"""Image-method multipath: deterministic standing-wave fading from walls.

In a closed room, the signal arriving at the reader is the phasor sum of
the direct ray and rays reflected off walls. Because path-length
differences of half a wavelength flip the phase, the received power as a
function of *position* exhibits peaks and nulls on a sub-metre scale —
the "severe radio signal multi-path effects" that the paper identifies as
the reason LANDMARC degrades in its closed Env3.

We model this with the classical image method: a first-order reflection
off wall W is equivalent to a direct ray from the *image* of the reader
mirrored across W, attenuated by the wall's reflectivity. Second-order
reflections (images of images) are supported with an approximate validity
test. The result is a deterministic, position-dependent *excess gain*
in dB relative to the direct-path-only power, which the channel adds on
top of the mean path loss.

Everything is vectorized over tag positions; the reader images are
precomputed once per reader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ChannelError
from ..geometry.rooms import Room
from ..geometry.vector import Segment, reflect_point
from ..utils.validation import ensure_positive

__all__ = ["MultipathSpec", "MultipathModel"]


@dataclass(frozen=True)
class MultipathSpec:
    """Configuration of the image-method model.

    Parameters
    ----------
    max_reflections:
        0 disables multipath entirely; 1 uses single-bounce images;
        2 adds double-bounce images (with an approximate validity test).
    wavelength_m:
        Carrier wavelength. RF Code active tags operate at 303.8 MHz,
        i.e. roughly 0.99 m.
    amplitude_gamma:
        Path-loss exponent used for the *relative* per-ray amplitudes
        (amplitude ~ d^(-gamma/2)).
    coherence:
        Fraction of the interference cross-terms retained, in [0, 1].
        A reader reports RSSI integrated over a whole beacon, during
        which tag orientation wobble, oscillator drift between beacons
        and moving scatterers partially decorrelate the specular phases;
        the *reported* power is therefore between the fully coherent
        phasor sum (coherence=1, deep sub-wavelength fringes) and the
        incoherent power sum (coherence=0, smooth). Calibrated per
        environment.
    min_excess_db, max_excess_db:
        Clamp on the excess gain; a perfect null would otherwise send the
        dB value to -infinity, which no real receiver reports.
    """

    max_reflections: int = 1
    wavelength_m: float = 0.99
    amplitude_gamma: float = 2.0
    coherence: float = 0.5
    min_excess_db: float = -25.0
    max_excess_db: float = 10.0

    def __post_init__(self) -> None:
        if self.max_reflections not in (0, 1, 2):
            raise ChannelError(
                f"max_reflections must be 0, 1 or 2, got {self.max_reflections}"
            )
        ensure_positive(self.wavelength_m, "wavelength_m")
        ensure_positive(self.amplitude_gamma, "amplitude_gamma")
        if not (0.0 <= self.coherence <= 1.0):
            raise ChannelError(
                f"coherence must be in [0, 1], got {self.coherence}"
            )
        if not self.min_excess_db < self.max_excess_db:
            raise ChannelError("min_excess_db must be below max_excess_db")

    @property
    def enabled(self) -> bool:
        return self.max_reflections > 0


def _side_sign(points: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sign of the cross product (b-a) x (points-a) for each point row."""
    ab = b - a
    ap = points - a[np.newaxis, :]
    return np.sign(ab[0] * ap[:, 1] - ab[1] * ap[:, 0])


def _segment_crosses_wall(
    starts: np.ndarray, end: np.ndarray, wall: Segment
) -> np.ndarray:
    """Vectorized: does the segment from each start to ``end`` cross ``wall``?

    Standard orientation test. Touching endpoints count as crossing,
    which is the conservative choice for reflection validity.
    """
    a = np.asarray(wall.a, dtype=np.float64)
    b = np.asarray(wall.b, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    s1 = _side_sign(starts, a, b)
    s2 = _side_sign(end[np.newaxis, :], a, b)[0]
    opposite_wall_sides = s1 * s2 <= 0
    # Both wall endpoints must straddle the start->end line as well.
    d = end[np.newaxis, :] - starts  # (n, 2)
    da = a[np.newaxis, :] - starts
    db = b[np.newaxis, :] - starts
    ca = d[:, 0] * da[:, 1] - d[:, 1] * da[:, 0]
    cb = d[:, 0] * db[:, 1] - d[:, 1] * db[:, 0]
    return opposite_wall_sides & (ca * cb <= 0)


class MultipathModel:
    """Excess multipath gain for one room, evaluated per reader.

    The model enumerates reflected images of the reader across every
    reflective wall (once or twice per :class:`MultipathSpec`), and for a
    batch of tag positions computes

    ``excess_db = 20 log10 |sum_i (A_i / A_0) e^{-jk d_i}|``

    where path 0 is the direct ray. Through-wall penetration losses of the
    *direct* ray are part of ``A_0`` so heavily obstructed direct paths
    correctly let reflections dominate; penetration losses along reflected
    rays are neglected (documented simplification).
    """

    def __init__(self, room: Room, spec: MultipathSpec):
        self.room = room
        self.spec = spec
        self._images: list[tuple[np.ndarray, float, Segment]] = []

    def prepare_reader(
        self,
        reader_pos: Sequence[float],
        wall_phases: Sequence[float] | None = None,
    ) -> "_ReaderImages":
        """Precompute the image set for one reader position.

        ``wall_phases`` optionally supplies one reflection phase offset
        (radians) per reflective wall — the electrical phase shift of the
        reflection, which depends on wall material and surface detail that
        the geometric model cannot know. The channel draws these once per
        seed, so different seeds realize different (but frozen) fringe
        patterns, exactly like re-running the testbed in a rearranged
        room. ``None`` means the ideal geometric phase (all zeros).
        """
        return _ReaderImages(
            self, np.asarray(reader_pos, dtype=np.float64), wall_phases
        )

    def excess_gain_db(
        self,
        reader_pos: Sequence[float],
        positions: np.ndarray,
        *,
        direct_attenuation_db: np.ndarray | None = None,
    ) -> np.ndarray:
        """Excess gain (dB) over the direct path at each tag position.

        Parameters
        ----------
        reader_pos:
            The reader coordinate.
        positions:
            Tag coordinates, shape ``(n, 2)``.
        direct_attenuation_db:
            Optional per-position penetration loss already computed for the
            direct ray (used to weight reflections correctly). If omitted
            it is computed from the room walls.
        """
        return self.prepare_reader(reader_pos).excess_gain_db(
            positions, direct_attenuation_db=direct_attenuation_db
        )


class _ReaderImages:
    """Image set of one reader; does the vectorized phasor summation."""

    def __init__(
        self,
        model: MultipathModel,
        reader_pos: np.ndarray,
        wall_phases: Sequence[float] | None = None,
    ):
        self.model = model
        self.reader_pos = reader_pos
        spec = model.spec
        walls = model.room.reflective_walls
        if wall_phases is None:
            phases = [0.0] * len(walls)
        else:
            phases = [float(p) for p in wall_phases]
            if len(phases) != len(walls):
                raise ChannelError(
                    f"{len(phases)} wall phases supplied for "
                    f"{len(walls)} reflective walls"
                )
        # Each image: (position, amplitude factor, validity wall, phase).
        self.images: list[tuple[np.ndarray, float, Segment, float]] = []
        if spec.max_reflections >= 1:
            for wall, phase in zip(walls, phases):
                img = np.asarray(
                    reflect_point(reader_pos, wall.segment), dtype=np.float64
                )
                self.images.append((img, wall.reflectivity, wall.segment, phase))
            if spec.max_reflections >= 2:
                for w1, p1 in zip(walls, phases):
                    img1 = np.asarray(
                        reflect_point(reader_pos, w1.segment), dtype=np.float64
                    )
                    for w2, p2 in zip(walls, phases):
                        if w2 is w1:
                            continue
                        img2 = np.asarray(
                            reflect_point(img1, w2.segment), dtype=np.float64
                        )
                        self.images.append(
                            (
                                img2,
                                w1.reflectivity * w2.reflectivity,
                                w2.segment,
                                p1 + p2,
                            )
                        )

    def excess_gain_db(
        self,
        positions: np.ndarray,
        *,
        direct_attenuation_db: np.ndarray | None = None,
    ) -> np.ndarray:
        spec = self.model.spec
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[np.newaxis, :]
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ChannelError(f"positions must have shape (n, 2), got {pts.shape}")
        n = pts.shape[0]
        if not spec.enabled or not self.images:
            return np.zeros(n)

        k = 2.0 * np.pi / spec.wavelength_m
        half_gamma = spec.amplitude_gamma / 2.0

        diff = pts - self.reader_pos[np.newaxis, :]
        d0 = np.maximum(np.sqrt(np.einsum("ij,ij->i", diff, diff)), 1e-3)
        if direct_attenuation_db is None:
            direct_attenuation_db = np.array(
                [
                    self.model.room.crossing_attenuation_db(p, self.reader_pos)
                    for p in pts
                ]
            )
        a0 = d0**-half_gamma * 10.0 ** (-np.asarray(direct_attenuation_db) / 20.0)
        a0 = np.maximum(a0, 1e-12)
        field = a0 * np.exp(-1j * k * d0)
        power_incoherent = a0**2

        for img, reflectivity, wall_seg, phase in self.images:
            di_vec = pts - img[np.newaxis, :]
            di = np.maximum(np.sqrt(np.einsum("ij,ij->i", di_vec, di_vec)), 1e-3)
            valid = _segment_crosses_wall(pts, img, wall_seg)
            amp = np.where(valid, reflectivity * di**-half_gamma, 0.0)
            field = field + amp * np.exp(-1j * (k * di + phase))
            power_incoherent = power_incoherent + amp**2

        power_coherent = np.abs(field) ** 2
        power = (
            spec.coherence * power_coherent
            + (1.0 - spec.coherence) * power_incoherent
        )
        excess = 10.0 * np.log10(np.maximum(power / a0**2, 1e-18))
        return np.clip(excess, spec.min_excess_db, spec.max_excess_db)
