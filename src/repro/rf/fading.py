"""Per-reading fast fading.

On top of the frozen spatial field (path loss + shadowing + multipath),
each individual beacon reception fluctuates: small motions, orientation
changes and receiver noise make repeated readings at the same position
spread over several dB (the min/max whiskers of the paper's Fig. 3).

We model the per-reading multiplicative power factor with a Rician
distribution: a dominant (line-of-sight) component of relative power
``K/(K+1)`` plus diffuse scatter ``1/(K+1)``. Large K means stable
readings (open areas); small K means heavy fluctuation (cluttered rooms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..utils.validation import ensure_non_negative

__all__ = ["FadingModel", "RicianFading", "NoFading"]


@runtime_checkable
class FadingModel(Protocol):
    """Draws per-reading fading offsets in dB."""

    def sample_db(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Draw fading offsets (dB) of the given shape."""
        ...


@dataclass(frozen=True)
class NoFading:
    """Degenerate fading model: every reading equals the mean RSSI."""

    def sample_db(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        return np.zeros(shape)


@dataclass(frozen=True)
class RicianFading:
    """Rician fast fading with K-factor ``k_factor``.

    The instantaneous complex channel is
    ``h = sqrt(K/(K+1)) + sqrt(1/(2(K+1))) * (g1 + j g2)`` with standard
    normal ``g1, g2``; the dB offset is ``10 log10 |h|^2``. ``k_factor=0``
    degenerates to Rayleigh fading.

    ``floor_db`` truncates catastrophic fades: receivers time-average over
    the beacon and never report a 40 dB null.
    """

    k_factor: float = 6.0
    floor_db: float = -20.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.k_factor, "k_factor")
        if self.floor_db >= 0:
            raise ValueError(f"floor_db must be negative, got {self.floor_db}")

    def sample_db(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        k = self.k_factor
        los = np.sqrt(k / (k + 1.0))
        scatter_scale = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        g = rng.standard_normal((*shape, 2)) * scatter_scale
        h_re = los + g[..., 0]
        h_im = g[..., 1]
        power = h_re**2 + h_im**2
        db = 10.0 * np.log10(np.maximum(power, 1e-12))
        return np.maximum(db, self.floor_db)

    def mean_offset_db(self, n_samples: int = 200_000, seed: int = 0) -> float:
        """Monte-Carlo mean of the dB offset (diagnostic; ~0 for large K)."""
        rng = np.random.default_rng(seed)
        return float(self.sample_db(rng, (n_samples,)).mean())
