"""The 8-level power quantization of the original LANDMARC equipment.

The 2003 LANDMARC system could not read RSSI directly: the reader swept
eight discrete power levels (level 1 = nearest detection range, level 8 =
farthest) and reported the level at which a tag became detectable. The
paper (§3.1) identifies this quantization as one of LANDMARC's original
pitfalls — the improved RF Code equipment reports dBm directly.

:class:`PowerLevelQuantizer` maps continuous RSSI into those discrete
levels so the original equipment can be emulated for ablation: running
LANDMARC on quantized readings quantifies how much accuracy the equipment
upgrade alone recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["PowerLevelQuantizer"]


@dataclass(frozen=True)
class PowerLevelQuantizer:
    """Quantize dBm RSSI into ``n_levels`` discrete power levels.

    Parameters
    ----------
    strongest_dbm:
        RSSI at or above this maps to level 1 (tag very close to the
        reader).
    weakest_dbm:
        RSSI at or below this maps to ``n_levels`` (barely detectable).
    n_levels:
        Number of levels; 8 on the original equipment.

    ``to_level`` returns integer levels; ``to_rssi`` maps a level back to
    the centre dBm of its bin (what an algorithm consuming levels would
    implicitly assume).
    """

    strongest_dbm: float = -55.0
    weakest_dbm: float = -95.0
    n_levels: int = 8

    def __post_init__(self) -> None:
        if not self.weakest_dbm < self.strongest_dbm:
            raise ConfigurationError(
                "weakest_dbm must be below strongest_dbm, got "
                f"{self.weakest_dbm} vs {self.strongest_dbm}"
            )
        if self.n_levels < 2:
            raise ConfigurationError(f"n_levels must be >= 2, got {self.n_levels}")

    @property
    def bin_width_db(self) -> float:
        return (self.strongest_dbm - self.weakest_dbm) / self.n_levels

    def to_level(self, rssi_dbm: np.ndarray | float) -> np.ndarray:
        """Map RSSI (dBm) to levels 1..n_levels (1 = strongest)."""
        rssi = np.asarray(rssi_dbm, dtype=np.float64)
        # Level 1 covers [strongest - width, +inf); level n covers (-inf, ...].
        steps = np.floor((self.strongest_dbm - rssi) / self.bin_width_db) + 1
        return np.clip(steps, 1, self.n_levels).astype(np.int64)

    def to_rssi(self, level: np.ndarray | int) -> np.ndarray:
        """Map a level back to the centre dBm of its bin."""
        lvl = np.asarray(level, dtype=np.float64)
        if np.any((lvl < 1) | (lvl > self.n_levels)):
            raise ConfigurationError(
                f"levels must be within 1..{self.n_levels}"
            )
        return self.strongest_dbm - (lvl - 0.5) * self.bin_width_db

    def roundtrip(self, rssi_dbm: np.ndarray | float) -> np.ndarray:
        """Quantize then dequantize — what an old-equipment pipeline sees."""
        return self.to_rssi(self.to_level(rssi_dbm))
