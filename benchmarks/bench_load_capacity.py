"""Load capacity: rated throughput, tail latency and overload shedding.

The acceptance bar for the open-loop load harness (docs/LOADTEST.md):

1. **Rated point meets its SLO** — at the rated operating point the
   harness must serve every offered arrival (availability 1.0) with
   sim-clock p99 queue wait <= 1.0 s, and *wall-clock* sustained
   throughput >= 50 localizations/s (the paper-grid estimator is a few
   ms per batch; anything slower means a serving-path regression).
2. **Determinism** — two same-seed runs of the rated point produce
   byte-identical witness documents.
3. **Overload degrades, never lies** — a 6x overload point with a
   capped executor must descend the degradation ladder (deadline
   reasons > 0) and report p99 queue wait past the request deadline;
   the open-loop schedule guarantees the pressure cannot be masked.
4. **The capacity model fits** — the least-squares fit over the sweep
   reproduces the rated point's sustained rate within 20%.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_load_capacity.py -s

or standalone (also writes BENCH_load_capacity.json)::

    PYTHONPATH=src python benchmarks/bench_load_capacity.py
"""

from __future__ import annotations

import json

from repro.analysis.registry import build_capacity_report
from repro.core.config import VIREConfig
from repro.loadtest import LoadProfile, fit_capacity_model, run_load_test
from repro.service import ServiceConfig

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_load_capacity.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

ENV = "Env1"
SEED = 0
DURATION_S = 10.0
RATED_RATE_PER_S = 5.0
OVERLOAD_RATE_PER_S = 30.0
P99_SLO_S = 1.0
WALL_THROUGHPUT_FLOOR_PER_S = 50.0
MODEL_ERROR_CEILING = 0.20

#: The paper's full-resolution virtual grid: the bench measures the
#: real serving cost, not a smoke-sized stand-in.
CONFIG = ServiceConfig(vire=VIREConfig(subdivisions=5))

BASE = LoadProfile(
    name="bench", process="burst", environment=ENV,
    duration_s=DURATION_S, seed=SEED,
)

SWEEP = (
    BASE.with_(name="bench-x1", rate_per_s=RATED_RATE_PER_S),
    BASE.with_(name="bench-x2", rate_per_s=2 * RATED_RATE_PER_S),
    BASE.with_(
        name="bench-x6", rate_per_s=OVERLOAD_RATE_PER_S,
        max_batches_per_tick=1,
    ),
)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def run_benchmark() -> dict:
    reports = [run_load_test(p, config=CONFIG) for p in SWEEP]
    rated, _, overloaded = reports

    deterministic = _witness(run_load_test(SWEEP[0], config=CONFIG)) == \
        _witness(rated)

    rated_slo = rated.slo
    rated_p99 = rated_slo["latency"]["p99_s"]
    wall_rate = rated.served / rated.wall_s if rated.wall_s > 0 else 0.0

    over_slo = overloaded.slo
    deadline_degradations = over_slo["reasons"].get("deadline", 0)
    over_p99 = over_slo["latency"]["p99_s"]

    points = [r.capacity_point() for r in reports]
    model = fit_capacity_model(points)
    predicted = model.predict(points[0])
    actual = points[0]["sustained_per_s"]
    model_error = abs(predicted - actual) / actual if actual else 1.0

    # The full report document regenerates from the same witness docs
    # the CI artifact stores — exercised here so the bench fails if the
    # registry and the harness ever drift apart.
    figures = build_capacity_report(
        [r.witness_document() for r in reports], meta={"bench": "capacity"}
    )["figures"]

    return {
        "env": ENV,
        "seed": SEED,
        "duration_s": DURATION_S,
        "sweep": [
            {
                "profile": r.profile.name,
                "offered": r.offered,
                "served": r.served,
                "availability": round(r.slo["availability"], 6),
                "p99_s": round(r.slo["latency"]["p99_s"], 6),
                "sustained_per_s": round(r.slo["sustained_per_s"], 3),
                "wall_s": round(r.wall_s, 4),
            }
            for r in reports
        ],
        "capacity_model": model.canonical_document(),
        "figures_regenerated": sorted(figures),
        "acceptance": {
            "rated_p99_slo_s": P99_SLO_S,
            "rated_p99_s": round(rated_p99, 6),
            "rated_p99_ok": rated_p99 <= P99_SLO_S,
            "rated_availability": round(rated_slo["availability"], 6),
            "rated_availability_ok": rated_slo["availability"] == 1.0,
            "wall_throughput_floor_per_s": WALL_THROUGHPUT_FLOOR_PER_S,
            "wall_throughput_per_s": round(wall_rate, 1),
            "wall_throughput_ok": wall_rate >= WALL_THROUGHPUT_FLOOR_PER_S,
            "deterministic": deterministic,
            "overload_deadline_degradations": int(deadline_degradations),
            "overload_p99_s": round(over_p99, 6),
            "overload_visible": bool(
                deadline_degradations > 0 and over_p99 > P99_SLO_S
            ),
            "model_error_ceiling": MODEL_ERROR_CEILING,
            "model_error": round(model_error, 4),
            "model_ok": model_error <= MODEL_ERROR_CEILING,
        },
    }


def test_load_capacity_benchmark():
    report = run_benchmark()
    emit("load capacity", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["deterministic"], (
        "same-seed rated runs are not byte-identical"
    )
    assert acc["rated_availability_ok"], (
        f"rated point shed load: availability {acc['rated_availability']}"
    )
    assert acc["rated_p99_ok"], (
        f"rated p99 {acc['rated_p99_s']}s exceeds the {P99_SLO_S}s SLO"
    )
    assert acc["wall_throughput_ok"], (
        f"wall throughput {acc['wall_throughput_per_s']}/s is below the "
        f"{WALL_THROUGHPUT_FLOOR_PER_S}/s floor"
    )
    assert acc["overload_visible"], (
        "the overload point did not surface deadline ladder descent"
    )
    assert acc["model_ok"], (
        f"capacity model misses the rated point by {acc['model_error']:.1%}"
    )


if __name__ == "__main__":
    out = run_benchmark()
    emit("load capacity", json.dumps(out, indent=2))
    ok = all(
        out["acceptance"][key]
        for key in (
            "deterministic", "rated_availability_ok", "rated_p99_ok",
            "wall_throughput_ok", "overload_visible", "model_ok",
        )
    )
    with open("BENCH_load_capacity.json", "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_load_capacity.json")
    raise SystemExit(0 if ok else 1)
