"""Ablations over VIRE's design choices called out in DESIGN.md:
weighting factors, reader count, grid spacing, equipment generation,
boundary compensation.
"""

from __future__ import annotations

import pytest

from repro import VIREConfig, VIREEstimator
from repro.experiments.sweeps import (
    boundary_compensation_study,
    format_sweep,
    sweep_equipment,
    sweep_grid_spacing,
    sweep_reader_count,
    sweep_weighting,
)

from .conftest import emit


def bench_ablation_soft_vs_classic(benchmark, grid, env3_reading):
    """Classic threshold-elimination VIRE vs the soft-likelihood variant."""
    from repro import SoftVIREEstimator
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import paper_scenario

    scenario = paper_scenario("Env3", n_trials=10)
    classic = VIREEstimator(grid, VIREConfig(target_total_tags=900))
    soft = SoftVIREEstimator(grid, sigma_db=2.5)
    result = run_scenario(scenario, [classic, soft])
    emit(
        "Ablation — classic VIRE vs soft-likelihood VIRE (Env3)",
        "\n".join(
            f"  {est.estimator_name:10s} mean {est.summary().mean:.3f} m, "
            f"p90 {est.summary().p90:.3f} m"
            for est in result.estimators
        ),
    )

    out = benchmark(soft.estimate, env3_reading)
    assert out.position is not None


def bench_ablation_weighting(benchmark, grid, env3_reading):
    result = sweep_weighting(n_trials=8)
    emit("Ablation — w1/w2 weighting (Env3)", format_sweep(result))

    unweighted = VIREEstimator(
        grid,
        VIREConfig(target_total_tags=900, w1_mode="uniform", use_w2=False),
    )
    out = benchmark(unweighted.estimate, env3_reading)
    assert out.position is not None


def bench_ablation_reader_count(benchmark, vire, env3_reading):
    result = sweep_reader_count(reader_counts=(2, 3, 4), n_trials=8)
    emit("Ablation — reader count (Env3)", format_sweep(result))
    assert result.values["4 readers"] <= result.values["2 readers"]

    two_reader = env3_reading.subset_readers([0, 1])
    out = benchmark(vire.estimate, two_reader)
    assert out.position is not None


def bench_ablation_grid_spacing(benchmark, vire, env3_reading):
    result = sweep_grid_spacing(spacing_factors=(0.75, 1.0, 1.25), n_trials=8)
    emit("Ablation — reference grid spacing (Env3)", format_sweep(result))

    out = benchmark(vire.estimate, env3_reading)
    assert out.position is not None


def bench_ablation_equipment_generation(benchmark, landmarc, env3_reading):
    result = sweep_equipment(n_trials=10)
    emit(
        "Ablation — direct RSSI vs original 8-level equipment (LANDMARC, Env3)",
        format_sweep(result),
    )
    assert result.values["8 power levels"] > result.values["direct RSSI"]

    out = benchmark(landmarc.estimate, env3_reading)
    assert out.position is not None


def bench_ablation_boundary_compensation(benchmark, grid, env3_reading):
    study = boundary_compensation_study(n_trials=8)
    emit(
        "Ablation — §6 boundary compensation (Env3)",
        "\n".join(
            [
                f"plain VIRE     interior {study.plain_interior:.3f} m, "
                f"boundary {study.plain_boundary:.3f} m",
                f"boundary-aware interior {study.compensated_interior:.3f} m, "
                f"boundary {study.compensated_boundary:.3f} m",
            ]
        ),
    )

    from repro import BoundaryAwareEstimator

    aware = BoundaryAwareEstimator(grid, VIREConfig(target_total_tags=900))
    out = benchmark(aware.estimate, env3_reading)
    assert out.position is not None
