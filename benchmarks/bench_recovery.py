"""Crash-recovery economics: checkpoint overhead and time-to-recover.

Three questions, tied to the PR's acceptance bar (docs/RUNTIME.md):

1. **Overhead** — attaching a JSONL write-ahead checkpoint to a serve
   session must cost <= 5% wall-clock over the bare session (best-of-N
   timing to suppress scheduler noise).
2. **Recovery** — resuming a session killed halfway must be *bounded*:
   replay (streaming without estimation) plus the remaining live half
   must land within 1.5x of a clean full run. Replay skips the
   estimators, but in this stack streaming itself is the dominant cost,
   so resume is about a rerun's price — what it buys is not speed but
   the already-served answers: no result a consumer witnessed is ever
   recomputed or changed.
3. **Identity** — none of this may change an answer: the bare,
   checkpointed and crash+resumed sessions must produce byte-identical
   determinism witnesses.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_recovery.py -s

or standalone (also writes BENCH_recovery.json)::

    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro import CrashPoint, ServiceConfig, SimulatedCrash
from repro.service import LocalizationService

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_recovery.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

ENV = "Env1"
DURATION_S = 20.0
KILL_AT_S = DURATION_S / 2
REPEATS = 5
RESUME_REPEATS = 3
OVERHEAD_CEILING = 0.05
RECOVERY_RATIO_CEILING = 1.5


def _service() -> LocalizationService:
    return LocalizationService(ServiceConfig(query_interval_s=1.0))


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn, repeats: int = REPEATS):
    """Min wall-clock over ``repeats`` runs (noise floor), last report."""
    best, report = float("inf"), None
    for _ in range(repeats):
        elapsed, report = _timed(fn)
        best = min(best, elapsed)
    return best, report


def run_benchmark(workdir: str | None = None) -> dict:
    workdir = workdir or tempfile.mkdtemp(prefix="bench_recovery_")
    ckpt_path = os.path.join(workdir, "session.ckpt")

    # 1) Bare vs checkpointed (interleaved best-of-N).
    bare_s, bare_report = _best_of(
        lambda: _service().run(ENV, DURATION_S)
    )

    def checkpointed():
        if os.path.exists(ckpt_path):
            os.remove(ckpt_path)
        return _service().run(ENV, DURATION_S, checkpoint_path=ckpt_path)

    ckpt_s, ckpt_report = _best_of(checkpointed)
    overhead = ckpt_s / bare_s - 1.0
    ckpt_bytes = os.path.getsize(ckpt_path)

    # 2) Kill the session halfway, then time the resume (each cycle
    # recreates the crash so every resume starts from the same cut).
    crashed_s = resume_s = float("inf")
    resumed_report = None
    for _ in range(RESUME_REPEATS):
        if os.path.exists(ckpt_path):
            os.remove(ckpt_path)
        elapsed, _ = _timed(lambda: _run_until_crash(ckpt_path))
        crashed_s = min(crashed_s, elapsed)
        elapsed, resumed_report = _timed(
            lambda: _service().run(
                ENV, DURATION_S, checkpoint_path=ckpt_path, resume=True
            )
        )
        resume_s = min(resume_s, elapsed)
    recovery_ratio = resume_s / bare_s

    # 3) The witnesses must agree byte-for-byte.
    witnesses = {
        "bare": _witness(bare_report),
        "checkpointed": _witness(ckpt_report),
        "resumed": _witness(resumed_report),
    }
    identical = len(set(witnesses.values())) == 1

    return {
        "env": ENV,
        "duration_s": DURATION_S,
        "kill_at_s": KILL_AT_S,
        "repeats": REPEATS,
        "results_per_session": len(bare_report.results),
        "timing_s": {
            "bare_best": round(bare_s, 4),
            "checkpointed_best": round(ckpt_s, 4),
            "crashed_half_session_best": round(crashed_s, 4),
            "resume_remaining_half_best": round(resume_s, 4),
        },
        "checkpoint": {
            "bytes": ckpt_bytes,
            "results_logged": int(
                resumed_report.summary["checkpoint_results_logged"]
            ),
            "snapshots": int(resumed_report.summary["checkpoint_snapshots"]),
            "results_restored": int(
                resumed_report.summary["resume_results_restored"]
            ),
        },
        "acceptance": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "overhead": round(overhead, 4),
            "overhead_ok": overhead <= OVERHEAD_CEILING,
            "recovery_ratio_ceiling": RECOVERY_RATIO_CEILING,
            "recovery_ratio": round(recovery_ratio, 4),
            "recovery_bounded": recovery_ratio <= RECOVERY_RATIO_CEILING,
            "witness_identical": identical,
        },
    }


def _run_until_crash(ckpt_path: str):
    try:
        _service().run(
            ENV, DURATION_S,
            checkpoint_path=ckpt_path,
            crash_point=CrashPoint(at_s=KILL_AT_S),
        )
    except SimulatedCrash:
        return None
    raise AssertionError("crash point never fired")


def test_recovery_benchmark(tmp_path):
    report = run_benchmark(str(tmp_path))
    emit("crash recovery", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["witness_identical"], (
        "checkpointing or resume changed an answer"
    )
    assert acc["overhead_ok"], (
        f"checkpoint overhead {acc['overhead']:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%}"
    )
    assert acc["recovery_bounded"], (
        f"time-to-recover ratio {acc['recovery_ratio']} exceeds "
        f"{RECOVERY_RATIO_CEILING}x a clean run: {report['timing_s']}"
    )


if __name__ == "__main__":
    out = run_benchmark()
    emit("crash recovery", json.dumps(out, indent=2))
    ok = all(
        out["acceptance"][key]
        for key in ("overhead_ok", "recovery_bounded", "witness_identical")
    )
    with open("BENCH_recovery.json", "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_recovery.json")
    raise SystemExit(0 if ok else 1)
