"""Ablation: larger sensing areas and more readers (paper §6).

Scales the testbed from the paper's 4x4 grid to 8x8 and swaps the
4-corner reader set for an 8-reader perimeter ring, reporting VIRE's
accuracy at each scale. Benchmarks a VIRE estimate on the large grid
(more real tags -> bigger lattice at fixed subdivision).
"""

from __future__ import annotations

import numpy as np

from repro import LandmarcEstimator, VIREConfig, VIREEstimator, run_scenario
from repro.experiments.measurement import TrialSampler
from repro.experiments.scale import (
    large_scale_scenario,
    perimeter_reader_positions,
    scaled_environment,
)
from repro.rf import env3
from repro.types import TrackingReading
from repro.utils.ascii import format_table

from .conftest import emit


def bench_large_scale_grid(benchmark):
    rows_out = []
    for size in (4, 6, 8):
        scenario = large_scale_scenario(
            rows=size, cols=size, n_tracking_tags=8, n_trials=5
        )
        vire = VIREEstimator(scenario.grid, VIREConfig(subdivisions=8))
        result = run_scenario(scenario, [LandmarcEstimator(), vire])
        rows_out.append(
            [
                f"{size}x{size}",
                scenario.grid.n_tags,
                result.by_name("LANDMARC").summary().mean,
                result.by_name("VIRE").summary().mean,
            ]
        )
    emit(
        "Ablation — sensing-area scale (Env3-L, scattered tags)",
        format_table(
            ["grid", "real tags", "LANDMARC (m)", "VIRE (m)"], rows_out
        ),
    )

    # Benchmark one estimate on the biggest lattice.
    scenario = large_scale_scenario(rows=8, cols=8, n_tracking_tags=1,
                                    n_trials=1)
    vire = VIREEstimator(scenario.grid, VIREConfig(subdivisions=8))
    sampler = TrialSampler(scenario.environment, scenario.grid, seed=0)
    reading = sampler.reading_for(next(iter(scenario.tracking_tags.values())))
    out = benchmark(vire.estimate, reading)
    assert out.position is not None


def bench_more_readers(benchmark):
    """4 corner readers vs an 8-reader perimeter ring on the 6x6 grid."""
    scenario = large_scale_scenario(rows=6, cols=6, n_tracking_tags=8,
                                    n_trials=5)
    grid = scenario.grid
    env = scenario.environment
    vire = VIREEstimator(grid, VIREConfig(subdivisions=8))
    ring = perimeter_reader_positions(grid, per_side=1)

    rows_out = []
    for label, reader_set in (
        ("4 corners", None),  # TrialSampler's default corner deployment
        ("8-reader ring", ring),
    ):
        errors = []
        for trial in range(scenario.n_trials):
            seed = scenario.trial_seed(trial)
            sampler = TrialSampler(env, grid, seed=seed)
            if reader_set is not None:
                # Swap in the denser reader deployment (same frozen seed).
                sampler.channel = env.build_channel(reader_set, seed=seed)
                sampler.reader_positions = reader_set
            for pos in scenario.tracking_tags.values():
                reading = sampler.reading_for(pos)
                errors.append(vire.estimate(reading).error_to(pos))
        rows_out.append([label, float(np.mean(errors))])
    emit(
        "Ablation — reader count at scale (6x6 grid)",
        format_table(["readers", "VIRE mean error (m)"], rows_out),
    )
    assert rows_out[1][1] <= rows_out[0][1] + 0.1  # ring at least as good

    sampler = TrialSampler(env, grid, seed=0)
    reading = sampler.reading_for((2.5, 2.5))
    out = benchmark(vire.estimate, reading)
    assert out.position is not None
