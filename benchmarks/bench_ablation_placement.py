"""Ablation: reader placement (paper §6 future work).

Compares canonical layouts (4 corners, 4 edge midpoints, colinear) and
runs the greedy placement search over an 8-candidate ring, printing the
selected sites. Benchmarks one placement evaluation (the optimizer's
inner loop).
"""

from __future__ import annotations

import numpy as np

from repro import corner_reader_positions
from repro.experiments.placement import (
    candidate_reader_positions,
    evaluate_placement,
    greedy_reader_placement,
)
from repro.rf import env3
from repro.utils.ascii import format_table

from .conftest import emit


def bench_reader_placement(benchmark, grid):
    env = env3()
    corners = corner_reader_positions(grid)
    xmin, ymin, xmax, ymax = grid.bounds
    mid_x, mid_y = (xmin + xmax) / 2, (ymin + ymax) / 2
    layouts = {
        "4 corners (paper)": corners,
        "4 edge midpoints": np.array(
            [
                [mid_x, ymin - 1.0],
                [mid_x, ymax + 1.0],
                [xmin - 1.0, mid_y],
                [xmax + 1.0, mid_y],
            ]
        ),
        "colinear (bad)": np.array(
            [[xmin - 1.0 + i * (xmax - xmin + 2.0) / 3.0, ymin - 1.0]
             for i in range(4)]
        ),
    }
    rows = [
        [name, evaluate_placement(env, grid, layout, n_trials=3)]
        for name, layout in layouts.items()
    ]

    candidates = candidate_reader_positions(grid)
    greedy = greedy_reader_placement(env, grid, candidates, n_readers=4,
                                     n_trials=2)
    rows.append(["greedy (8 candidates)", greedy.error_trace[-1]])
    emit(
        "Ablation — reader placement (Env3)",
        format_table(["layout", "mean error (m)"], rows)
        + "\n\ngreedy selection order: "
        + ", ".join(
            f"({x:.1f},{y:.1f})" for x, y in greedy.selected_positions
        ),
    )

    out = benchmark(
        evaluate_placement, env, grid, corners, n_trials=1,
        validation_per_axis=3,
    )
    assert out > 0
