"""Shared benchmark fixtures.

Each ``bench_figN_*`` module regenerates the corresponding paper figure
(at a modest trial count), prints the table/chart so running

    pytest benchmarks/ --benchmark-only -s

shows the reproduced figure next to the timing, and benchmarks the
figure's core computational unit (one estimate / one channel sweep).
"""

from __future__ import annotations

import pytest

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    paper_testbed_grid,
)
from repro.experiments.measurement import TrialSampler
from repro.rf import env3


def emit(title: str, body: str) -> None:
    """Print a figure reproduction block (visible with -s / -rA)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def grid():
    return paper_testbed_grid()


@pytest.fixture(scope="session")
def env3_sampler(grid):
    """One frozen Env3 world shared by the per-estimate benchmarks."""
    return TrialSampler(env3(), grid, seed=0)


@pytest.fixture(scope="session")
def env3_reading(env3_sampler):
    return env3_sampler.reading_for((1.45, 1.55))


@pytest.fixture(scope="session")
def landmarc():
    return LandmarcEstimator()


@pytest.fixture(scope="session")
def vire(grid):
    return VIREEstimator(grid, VIREConfig(target_total_tags=900))
