"""Fig. 2(b): LANDMARC estimation error for 9 tags in Env1/Env2/Env3.

Regenerates the paper's motivation figure and benchmarks one LANDMARC
estimate (its per-query cost is the figure's computational unit).
"""

from __future__ import annotations

from repro.experiments.figures import fig2b, format_fig2b

from .conftest import emit


def bench_fig2b_landmarc_environments(benchmark, landmarc, env3_reading):
    result = fig2b(n_trials=10, base_seed=0)
    emit("Fig. 2(b) — LANDMARC across environments", format_fig2b(result))

    out = benchmark(landmarc.estimate, env3_reading)
    assert out.position is not None
