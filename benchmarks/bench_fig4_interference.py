"""Fig. 4: RF interference of densely packed tags.

Regenerates the independent-vs-interference comparison and benchmarks
the interference model's corruption pass.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig4, format_fig4
from repro.rf import TagInterferenceModel

from .conftest import emit


def bench_fig4_tag_interference(benchmark):
    result = fig4(n_tags=20, seed=0)
    emit("Fig. 4 — tag-density interference", format_fig4(result))

    model = TagInterferenceModel()
    rng = np.random.default_rng(0)
    positions = rng.uniform(-0.05, 0.05, (20, 2))
    clean = np.full(20, -75.0)

    out = benchmark(model.corrupt, clean, positions, rng)
    assert out.shape == (20,)
