"""Fig. 3: RSSI vs distance — measured (20 reads) vs theoretical.

Regenerates the curve and benchmarks the channel sampling sweep that
produces it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig3, format_fig3

from .conftest import emit


def bench_fig3_rssi_vs_distance(benchmark, env3_sampler):
    result = fig3(n_reads=20, seed=0)
    emit("Fig. 3 — RSSI vs distance", format_fig3(result))

    distances = np.arange(1.0, 20.5, 1.0)
    out = benchmark(env3_sampler.rssi_vs_distance, distances, n_reads=20)
    assert out.shape == (20, 20)
