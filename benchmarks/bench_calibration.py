"""Self-healing calibration: does the closed loop actually heal?

Five questions, tied to the PR's acceptance bar (docs/CALIBRATION.md):

1. **Restoration** — under the ``drift`` chaos preset (staggered
   multi-reader drift plus one decaying reference tag), the median
   localization error with the closed loop enabled must land within
   1.5x of the no-fault baseline, while the uncorrected run visibly
   exceeds that bound. The workload is placed inside the decaying
   anchor's interpolation neighbourhood — per-reader drift cancels in
   RSSI-differential estimators (that robustness is LANDMARC's whole
   premise), so the blast radius of the rotting *lattice column* is
   where an uncorrected service actually loses accuracy.
2. **Neutrality** — with the corrector enabled but zero injected drift,
   the determinism witness must be byte-identical to the corrector-off
   run: ambient noise never crosses the bias deadband, so no answer
   changes. (The corrector-*disabled* path is bit-identical to the
   pre-calibration pipeline by construction; the tier-1 golden-witness
   tests pin that.)
3. **Determinism** — two corrected runs under the same seed must
   produce byte-identical witnesses *including* the quarantine/readmit
   event log.
4. **Lifecycle** — the decaying reference tag must be quarantined while
   its column is rotten and re-admitted after its battery swap.
5. **Overhead** — the enabled corrector must cost <= 5% wall-clock on a
   fault-free session (best-of-N timing to suppress scheduler noise).

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_calibration.py -s

or standalone (also writes BENCH_calibration.json)::

    PYTHONPATH=src python benchmarks/bench_calibration.py
"""

from __future__ import annotations

import json
import statistics
import time

from repro import (
    CalibrationDriftFault,
    CalibrationPolicy,
    ServiceConfig,
    chaos_preset,
    paper_scenario,
)
from repro.service import LocalizationService

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_calibration.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

DURATION_S = 50.0
OVERHEAD_DURATION_S = 30.0
SEED = 0
ENV = "Env1"
REPEATS = 3
ERROR_RATIO_CEILING = 1.5
OVERHEAD_CEILING = 0.05
BIAS_TOLERANCE_DB = 1.0

#: Tracking tags inside ref-5's (1 m, 1 m) interpolation neighbourhood —
#: the region whose virtual cells the decaying anchor poisons. Mutual
#: spacing stays >= ~0.6 m so tag interference does not swamp the
#: baseline.
ANCHOR_ADJACENT_TAGS = {
    1: (0.95, 1.05),
    2: (1.45, 0.85),
    3: (1.05, 1.50),
    4: (0.55, 0.75),
}


def _scenario():
    return paper_scenario(ENV, n_trials=1, base_seed=SEED).with_(
        tracking_tags=ANCHOR_ADJACENT_TAGS
    )


def _run(plan, policy, *, duration_s: float = DURATION_S):
    config = ServiceConfig(query_interval_s=1.0, calibration=policy)
    return LocalizationService(config).run(
        _scenario(), duration_s, fault_plan=plan
    )


def _median_error(report) -> float:
    return statistics.median(report.errors_m)


def _witness_bytes(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _timed(plan, policy):
    t0 = time.perf_counter()
    _run(plan, policy, duration_s=OVERHEAD_DURATION_S)
    return time.perf_counter() - t0


def _injected_bias_at(plan, reader_id: str, t: float) -> float:
    total = 0.0
    for fault in plan:
        if isinstance(fault, CalibrationDriftFault) and fault.reader_id == reader_id:
            total += fault.bias_at(t)
    return total


def _drift_saturated(plan, reader_id: str, t: float) -> bool:
    """True when every drift fault on ``reader_id`` sits at its cap at ``t``.

    Mid-ramp estimates lag the injected value by roughly the residual
    window plus middleware smoothing; only saturated (or drift-free)
    readers get the tight accuracy gate.
    """
    faults = [
        f
        for f in plan
        if isinstance(f, CalibrationDriftFault) and f.reader_id == reader_id
    ]
    return all(abs(f.bias_at(t)) >= f.max_drift_db - 1e-9 for f in faults)


def run_benchmark() -> dict:
    plan = chaos_preset("drift", seed=SEED)

    baseline = _run(None, None)
    uncorrected = _run(plan, None)
    corrected = _run(plan, CalibrationPolicy())
    corrected_again = _run(plan, CalibrationPolicy())
    neutral_on = _run(None, CalibrationPolicy())

    base_med = _median_error(baseline)
    un_med = _median_error(uncorrected)
    co_med = _median_error(corrected)

    # Lifecycle: the decaying anchor's quarantine must bracket its rot
    # and the readmit must follow the battery swap.
    events = list(corrected.calibration_events)
    recovery_s = next(
        f.recovery_time_s for f in plan if getattr(f, "tag_id", None) == "ref-5"
    )
    quarantines = [e["t"] for e in events if e["event"] == "quarantine" and e["tag"] == "ref-5"]
    readmits = [e["t"] for e in events if e["event"] == "readmit" and e["tag"] == "ref-5"]
    lifecycle_ok = (
        bool(quarantines)
        and bool(readmits)
        and min(quarantines) < recovery_s < max(readmits)
    )

    # Bias table: injected (ground truth from the plan) vs estimated
    # (the corrector's applied correction) at session end.
    end_s = float(corrected.summary["session_end_s"])
    reader_ids = sorted(
        k.removeprefix("calibration_bias_").removesuffix("_db")
        for k in corrected.summary
        if k.startswith("calibration_bias_")
    )
    bias_table = {}
    bias_ok = True
    for rid in reader_ids:
        injected = _injected_bias_at(plan, rid, end_s)
        estimated = float(corrected.summary[f"calibration_bias_{rid}_db"])
        gated = injected == 0.0 or _drift_saturated(plan, rid, end_s)
        row = {
            "injected_db": round(injected, 3),
            "estimated_db": round(estimated, 3),
            "gated": gated,
        }
        if gated:
            row["error_db"] = round(abs(estimated - injected), 3)
            bias_ok = bias_ok and row["error_db"] <= BIAS_TOLERANCE_DB
        bias_table[rid] = row

    # Overhead: interleaved best-of-N fault-free sessions.
    on_best, off_best = float("inf"), float("inf")
    for _ in range(REPEATS):
        off_best = min(off_best, _timed(None, None))
        on_best = min(on_best, _timed(None, CalibrationPolicy()))
    overhead = max(0.0, on_best / off_best - 1.0)

    report = {
        "env": ENV,
        "seed": SEED,
        "duration_s": DURATION_S,
        "workload": {str(k): list(v) for k, v in ANCHOR_ADJACENT_TAGS.items()},
        "median_error_m": {
            "baseline": round(base_med, 4),
            "uncorrected": round(un_med, 4),
            "corrected": round(co_med, 4),
        },
        "error_ratio": {
            "uncorrected": round(un_med / base_med, 4),
            "corrected": round(co_med / base_med, 4),
        },
        "calibration_events": events,
        "bias_table": bias_table,
        "timing_s": {
            "corrector_off_best": round(off_best, 4),
            "corrector_on_best": round(on_best, 4),
        },
        "acceptance": {
            "error_ratio_ceiling": ERROR_RATIO_CEILING,
            "corrected_within_bound": co_med <= ERROR_RATIO_CEILING * base_med,
            "uncorrected_exceeds_bound": un_med > ERROR_RATIO_CEILING * base_med,
            "neutral_witness_identical": (
                _witness_bytes(neutral_on) == _witness_bytes(baseline)
            ),
            "same_seed_witness_identical": (
                _witness_bytes(corrected) == _witness_bytes(corrected_again)
            ),
            "events_in_witness": (
                "calibration_events" in corrected.witness_document()
            ),
            "quarantine_lifecycle_ok": lifecycle_ok,
            "bias_tolerance_db": BIAS_TOLERANCE_DB,
            "bias_ok": bias_ok,
            "overhead_ceiling": OVERHEAD_CEILING,
            "overhead": round(overhead, 4),
            "overhead_ok": overhead <= OVERHEAD_CEILING,
        },
    }
    return report


def test_calibration_benchmark():
    report = run_benchmark()
    emit("self-healing calibration", json.dumps(report, indent=2))
    acc = report["acceptance"]
    ratios = report["error_ratio"]
    assert acc["corrected_within_bound"], (
        f"corrected error ratio {ratios['corrected']} exceeds "
        f"{ERROR_RATIO_CEILING}x the no-fault baseline"
    )
    assert acc["uncorrected_exceeds_bound"], (
        f"uncorrected error ratio {ratios['uncorrected']} does not exceed "
        f"{ERROR_RATIO_CEILING}x — the drift preset no longer stresses "
        "the lattice enough to witness healing"
    )
    assert acc["neutral_witness_identical"], (
        "corrector enabled under zero drift changed an answer "
        "(deadband neutrality broken)"
    )
    assert acc["same_seed_witness_identical"], (
        "same-seed corrected runs diverged (witness not byte-identical)"
    )
    assert acc["events_in_witness"], (
        "quarantine/readmit events missing from the determinism witness"
    )
    assert acc["quarantine_lifecycle_ok"], (
        "decaying reference tag was not quarantined-then-readmitted "
        f"around its battery swap: {report['calibration_events']}"
    )
    assert acc["bias_ok"], (
        f"bias estimate off by more than {BIAS_TOLERANCE_DB} dB on a "
        f"gated reader: {report['bias_table']}"
    )
    assert acc["overhead_ok"], (
        f"corrector overhead {acc['overhead']:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%}"
    )


if __name__ == "__main__":
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    ok = all(
        report["acceptance"][key]
        for key in (
            "corrected_within_bound",
            "uncorrected_exceeds_bound",
            "neutral_witness_identical",
            "same_seed_witness_identical",
            "events_in_witness",
            "quarantine_lifecycle_ok",
            "bias_ok",
            "overhead_ok",
        )
    )
    with open("BENCH_calibration.json", "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_calibration.json")
    if not ok:
        raise SystemExit("calibration benchmark acceptance FAILED")
