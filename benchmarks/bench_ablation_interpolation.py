"""Ablation: interpolation scheme (paper §6 future work).

Linear (the paper) vs polynomial vs spline RSSI interpolation: accuracy
via the sweep, per-call cost via parametrized benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import VirtualGrid
from repro.core.interpolation import make_interpolator
from repro.experiments.sweeps import format_sweep, sweep_interpolation

from .conftest import emit

_printed = False


def _print_once():
    global _printed
    if not _printed:
        result = sweep_interpolation(n_trials=8)
        emit("Ablation — interpolation scheme (Env3)", format_sweep(result))
        _printed = True


@pytest.mark.parametrize("kind", ["linear", "polynomial", "spline"])
def bench_interpolation_kind(benchmark, grid, kind):
    _print_once()
    vgrid = VirtualGrid.for_target_count(grid, 900)
    lattice = np.random.default_rng(0).uniform(-90, -50, (4, 4))
    interpolator = make_interpolator(kind)

    out = benchmark(interpolator.interpolate, lattice, vgrid)
    assert out.shape == vgrid.shape
