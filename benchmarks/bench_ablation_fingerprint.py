"""Ablation: offline fingerprinting (RADAR-style) vs live-reference VIRE.

The experiment behind LANDMARC's founding argument: an offline radio map
is exact while fresh but dies with environment drift, whereas reference
tags recalibrate continuously. We calibrate a fingerprint map in one
frozen world, then evaluate in (a) the same world and (b) drifted worlds.
"""

from __future__ import annotations

import numpy as np

from repro import (
    FingerprintEstimator,
    VIREConfig,
    VIREEstimator,
    corner_reader_positions,
)
from repro.experiments.measurement import TrialSampler
from repro.rf import env3
from repro.utils.ascii import format_table
from repro.utils.rng import derive_rng

from .conftest import emit

PROBES = [(1.3, 1.7), (2.2, 0.8), (0.7, 2.3), (1.8, 2.1), (1.1, 1.1)]


def bench_fingerprint_vs_vire_drift(benchmark, grid):
    env = env3()
    readers = corner_reader_positions(grid)
    fingerprint = FingerprintEstimator(resolution=12)
    fingerprint.calibrate(
        env.build_channel(readers, seed=100), grid, derive_rng(0, "cal")
    )
    vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))

    def mean_errors(world_seed: int) -> tuple[float, float]:
        errs_fp, errs_vire = [], []
        for trial in range(6):
            sampler = TrialSampler(env, grid, seed=world_seed + trial)
            for pos in PROBES:
                reading = sampler.reading_for(pos)
                errs_fp.append(fingerprint.estimate(reading).error_to(pos))
                errs_vire.append(vire.estimate(reading).error_to(pos))
        return float(np.mean(errs_fp)), float(np.mean(errs_vire))

    fp_fresh, vire_fresh = mean_errors(100)
    fp_drift, vire_drift = mean_errors(500)
    emit(
        "Ablation — offline fingerprint map vs live-reference VIRE (Env3)",
        format_table(
            ["condition", "Fingerprint (m)", "VIRE (m)"],
            [
                ["same world as calibration", fp_fresh, vire_fresh],
                ["environment drifted", fp_drift, vire_drift],
            ],
        ),
    )
    assert fp_drift > fp_fresh
    assert vire_drift < fp_drift

    sampler = TrialSampler(env, grid, seed=0)
    reading = sampler.reading_for(PROBES[0])
    out = benchmark(fingerprint.estimate, reading)
    assert out.position is not None
