"""Zone scale-out economics: N shared-nothing zones vs one monolith.

The question behind ``repro.zones`` (docs/ZONES.md): on a site N times
the paper's testbed, is running N zone workers actually faster than one
monolithic pipeline over the merged deployment — *without changing any
answer*? Three checks, tied to the PR's acceptance bar:

1. **Throughput** — the 4-zone deployment must localize at >= 2.5x the
   monolithic baseline's localizations/s on the identical site (same
   rooms, same 16 readers, same 36 tags, same virtual-tag density).
   The win is algorithmic, not parallelism: VIRE's elimination cost
   scales with readers x virtual cells, so four small per-zone grids
   beat one merged site grid even on a single core (the serial lockstep
   is what's timed here; ``parallel=True`` stacks on top).
2. **Determinism** — the zoned run repeated under the same seed must
   produce a byte-identical multi-zone witness.
3. **Parallel identity** — process-per-zone fan-out must produce the
   same witness as the serial lockstep (shared-nothing means the
   execution mode cannot matter).

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_zone_scaleout.py -s

or standalone (also writes BENCH_zone_scaleout.json)::

    PYTHONPATH=src python benchmarks/bench_zone_scaleout.py
"""

from __future__ import annotations

import json
import time

from repro.service.pipeline import ServiceConfig
from repro.zones import ZoneGateway, monolithic_site_plan, scaled_site_plan

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_zone_scaleout.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

ENV = "Env1"
N_ZONES = 4
SEED = 0
DURATION_S = 10.0
PARALLEL_DURATION_S = 4.0
SPEEDUP_FLOOR = 2.5

#: Service knobs for both arms: a demanding query rate so the estimator
#: dominates the tick (the regime scale-out exists for), identical for
#: the zoned and monolithic deployments.
CONFIG = ServiceConfig(query_interval_s=0.125, max_batch_size=16)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_benchmark() -> dict:
    zoned_plan = scaled_site_plan(ENV, N_ZONES, seed=SEED)
    mono_plan = monolithic_site_plan(ENV, N_ZONES, seed=SEED)

    # 1) Throughput, zoned vs monolithic, identical site and load.
    zoned_s, zoned = _timed(
        lambda: ZoneGateway(zoned_plan, CONFIG).run(DURATION_S)
    )
    mono_s, mono = _timed(
        lambda: ZoneGateway(mono_plan, CONFIG).run(DURATION_S)
    )
    zoned_lps = zoned.summary["results"] / zoned_s
    mono_lps = mono.summary["results"] / mono_s
    speedup = zoned_lps / mono_lps if mono_lps > 0 else float("inf")

    # 2) Same seed, same plan: the witness must repeat byte-for-byte.
    _, zoned_again = _timed(
        lambda: ZoneGateway(zoned_plan, CONFIG).run(DURATION_S)
    )
    repeat_identical = _witness(zoned) == _witness(zoned_again)

    # 3) Serial lockstep vs process-per-zone: identical witnesses.
    serial_short = ZoneGateway(zoned_plan, CONFIG).run(PARALLEL_DURATION_S)
    parallel_short = ZoneGateway(zoned_plan, CONFIG).run(
        PARALLEL_DURATION_S, parallel=True
    )
    parallel_identical = _witness(serial_short) == _witness(parallel_short)

    return {
        "env": ENV,
        "n_zones": N_ZONES,
        "seed": SEED,
        "duration_s": DURATION_S,
        "site": {
            "zoned_results": int(zoned.summary["results"]),
            "mono_results": int(mono.summary["results"]),
            "readers_per_arm": 4 * N_ZONES,
            "tracking_tags_per_arm": sum(
                len(z.tracking_tags) for z in zoned_plan
            ),
        },
        "timing_s": {
            "zoned_wall": round(zoned_s, 4),
            "mono_wall": round(mono_s, 4),
        },
        "throughput": {
            "zoned_localizations_per_s": round(zoned_lps, 2),
            "mono_localizations_per_s": round(mono_lps, 2),
        },
        "acceptance": {
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup": round(speedup, 2),
            "speedup_ok": speedup >= SPEEDUP_FLOOR,
            "repeat_identical": repeat_identical,
            "parallel_identical": parallel_identical,
        },
    }


def test_zone_scaleout_benchmark():
    report = run_benchmark()
    emit("zone scale-out", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["repeat_identical"], (
        "the zoned run is not reproducible under its seed"
    )
    assert acc["parallel_identical"], (
        "process-per-zone produced different answers than serial lockstep"
    )
    assert acc["speedup_ok"], (
        f"zoned throughput is only {acc['speedup']}x the monolith "
        f"(floor {SPEEDUP_FLOOR}x): {report['throughput']}"
    )


if __name__ == "__main__":
    out = run_benchmark()
    emit("zone scale-out", json.dumps(out, indent=2))
    ok = all(
        out["acceptance"][key]
        for key in ("speedup_ok", "repeat_identical", "parallel_identical")
    )
    with open("BENCH_zone_scaleout.json", "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_zone_scaleout.json")
    raise SystemExit(0 if ok else 1)
