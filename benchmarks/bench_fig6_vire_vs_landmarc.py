"""Fig. 6(a-c): VIRE vs LANDMARC per tag in all three environments.

The headline reproduction: regenerates the full comparison and
benchmarks one VIRE estimate (the per-query cost of the proposed
method at the paper's N² ~ 900 operating point).
"""

from __future__ import annotations

from repro.experiments.figures import fig6, format_fig6

from .conftest import emit


def bench_fig6_vire_vs_landmarc(benchmark, vire, env3_reading):
    result = fig6(n_trials=15, base_seed=0)
    emit("Fig. 6 — VIRE vs LANDMARC (all environments)", format_fig6(result))

    # Shape assertions: VIRE must win on average in every environment.
    for env_name in ("Env1", "Env2", "Env3"):
        lm = sum(result.landmarc[env_name].values())
        vi = sum(result.vire[env_name].values())
        assert vi < lm, env_name

    out = benchmark(vire.estimate, env3_reading)
    assert out.diagnostics["total_virtual_tags"] == 961
