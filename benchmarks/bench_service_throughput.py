"""Serving throughput of the streaming service, cache on vs off.

The interpolation cache's contract is "throughput knob, not an answer
knob": on a stable-reference scenario (static reference tags, smoothed
lattices unchanged between queries) the cached pipeline must serve at
least ~2x the localizations/sec of the uncached one while producing
bitwise-identical positions. This bench measures both pipelines on the
same warmed deployment and emits the numbers as JSON.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_service_throughput.py -s

or standalone (also writes benchmarks/service_throughput.json)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import json
import time

from repro import ServiceConfig, ServicePipeline, VIREConfig, build_paper_deployment
from repro.rf import env3

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_service_throughput.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

N_REQUESTS = 240
TAGS = {
    f"asset-{i}": pos
    for i, pos in enumerate(
        [(0.7, 0.9), (1.3, 1.7), (2.1, 1.1), (2.6, 2.4), (0.9, 2.2), (1.8, 0.6)]
    )
}


def _build_world():
    deployment = build_paper_deployment(env3(), tracking_tags=TAGS, seed=0)
    deployment.simulator.warm_up()
    return deployment


def _serve(deployment, *, cache_enabled: bool, n_requests: int = N_REQUESTS):
    """Serve ``n_requests`` round-robin queries on a frozen middleware."""
    config = ServiceConfig(
        max_batch_size=n_requests,  # bursty load: one big batch
        max_latency_s=1.0,
        request_deadline_s=None,
        cache_enabled=cache_enabled,
        # The paper's dense operating point: interpolation is the
        # dominant per-estimate cost here, which is what the cache buys.
        vire=VIREConfig(target_total_tags=2500),
    )
    pipeline = ServicePipeline(
        deployment.grid, deployment.simulator.middleware, config
    )
    now = deployment.simulator.now
    tag_ids = sorted(TAGS)
    t0 = time.perf_counter()
    for i in range(n_requests):
        pipeline.submit_request(tag_ids[i % len(tag_ids)], now)
    results = []
    results.extend(pipeline.process_due(now))
    results.extend(pipeline.drain(now))
    wall_s = time.perf_counter() - t0
    summary = pipeline.metrics_summary()
    return {
        "cache_enabled": cache_enabled,
        "results": results,
        "wall_s": wall_s,
        "localizations_per_s": len(results) / wall_s,
        "latency_p50_s": summary["latency_p50_s"],
        "latency_p99_s": summary["latency_p99_s"],
        "cache_hit_rate": summary["cache_hit_rate"],
        "degraded": summary["degraded"],
    }


def run_throughput_report(repeats: int = 5) -> dict:
    deployment = _build_world()
    # Warm both code paths once so neither run pays first-call overheads.
    _serve(deployment, cache_enabled=False, n_requests=len(TAGS))

    # Interleave the two modes so slow drift in machine load (CI noise,
    # frequency scaling) biases both equally, and keep the best run of
    # each: timing noise only ever slows a run down.
    off_runs, on_runs = [], []
    for _ in range(repeats):
        off_runs.append(_serve(deployment, cache_enabled=False))
        on_runs.append(_serve(deployment, cache_enabled=True))
    off = min(off_runs, key=lambda r: r["wall_s"])
    on = min(on_runs, key=lambda r: r["wall_s"])

    mismatches = sum(
        1
        for a, b in zip(on.pop("results"), off.pop("results"))
        if a.position != b.position or a.tag_id != b.tag_id
    )
    return {
        "n_requests": N_REQUESTS,
        "n_tags": len(TAGS),
        "cache_on": on,
        "cache_off": off,
        "speedup": on["localizations_per_s"] / off["localizations_per_s"],
        "position_mismatches": mismatches,
    }


def bench_service_cache_speedup():
    report = run_throughput_report()
    emit(
        "Service throughput: interpolation cache on vs off",
        json.dumps(report, indent=2),
    )
    assert report["position_mismatches"] == 0  # bitwise-identical answers
    assert report["cache_on"]["cache_hit_rate"] > 0.5
    assert report["cache_off"]["cache_hit_rate"] == 0.0
    assert report["speedup"] >= 2.0  # the cache's acceptance bar
    assert report["cache_on"]["degraded"] == 0


if __name__ == "__main__":
    import pathlib
    import sys

    out = run_throughput_report()
    text = json.dumps(out, indent=2)
    print(text)
    path = pathlib.Path(__file__).with_name("service_throughput.json")
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)
