"""Serving throughput of the streaming service, cache on vs off.

History: before the batch engine existed, the interpolation cache was
the only layer that shared interpolated surfaces between requests, and
this bench held it to a ">=2x localizations/sec" bar. The engine's
micro-batched serving path (:mod:`repro.engine`) now dedups identical
reference lattices *within* every batch, so that speedup moved into the
serving path itself — measured and scored in
``benchmarks/bench_engine_batch.py`` / ``BENCH_engine_batch.json``.

What is left to hold the cache to, and what this bench asserts now:

* **not an answer knob** — cache on/off must produce bitwise-identical
  positions (the contract that survives every refactor);
* **roughly free** — with in-batch dedup the cache's residual value is
  cross-batch reuse; its bookkeeping (per-reader ``get_or_compute``
  calls, which the engine preserves exactly so hit/miss statistics stay
  scalar-identical) must not cost meaningful throughput;
* its hit-rate accounting stays truthful (≈1 on a stable-reference
  scenario with the cache on, exactly 0 with it off).

Two workload shapes are reported: ``burst`` (every request in one big
batch — in-batch dedup does all the sharing, the cache can only add
overhead) and ``waves`` (batches of ``len(TAGS)`` — the cross-batch
regime where the cache's reuse actually engages).

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_service_throughput.py -s

or standalone (also writes benchmarks/service_throughput.json)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import json
import time

from repro import ServiceConfig, ServicePipeline, VIREConfig, build_paper_deployment
from repro.rf import env3

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_service_throughput.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

N_REQUESTS = 240
TAGS = {
    f"asset-{i}": pos
    for i, pos in enumerate(
        [(0.7, 0.9), (1.3, 1.7), (2.1, 1.1), (2.6, 2.4), (0.9, 2.2), (1.8, 0.6)]
    )
}
#: The cache must not cost more than this fraction of throughput in
#: either workload shape (measured headroom: burst ~0.7x on this
#: hardware — per-call bookkeeping on 960 get_or_compute calls — and
#: waves ~1.05x; the bar leaves room for CI noise).
MIN_CACHE_SPEEDUP = 0.5


def _build_world():
    deployment = build_paper_deployment(env3(), tracking_tags=TAGS, seed=0)
    deployment.simulator.warm_up()
    return deployment


def _serve(
    deployment,
    *,
    cache_enabled: bool,
    batch_size: int,
    n_requests: int = N_REQUESTS,
):
    """Serve ``n_requests`` round-robin queries on a frozen middleware."""
    config = ServiceConfig(
        max_batch_size=batch_size,
        max_latency_s=1.0,
        request_deadline_s=None,
        cache_enabled=cache_enabled,
        # The paper's dense operating point: interpolation is the
        # dominant per-estimate cost, the regime both sharing layers
        # (in-batch dedup and the cross-batch cache) are built for.
        vire=VIREConfig(target_total_tags=2500),
    )
    pipeline = ServicePipeline(
        deployment.grid, deployment.simulator.middleware, config
    )
    now = deployment.simulator.now
    tag_ids = sorted(TAGS)
    results = []
    t0 = time.perf_counter()
    for i in range(n_requests):
        pipeline.submit_request(tag_ids[i % len(tag_ids)], now)
        results.extend(pipeline.process_due(now))
    results.extend(pipeline.drain(now))
    wall_s = time.perf_counter() - t0
    summary = pipeline.metrics_summary()
    return {
        "cache_enabled": cache_enabled,
        "results": results,
        "wall_s": wall_s,
        "localizations_per_s": len(results) / wall_s,
        "latency_p50_s": summary["latency_p50_s"],
        "latency_p99_s": summary["latency_p99_s"],
        "cache_hit_rate": summary["cache_hit_rate"],
        "degraded": summary["degraded"],
    }


def _compare(deployment, *, batch_size: int, repeats: int) -> dict:
    # Interleave the two modes so slow drift in machine load (CI noise,
    # frequency scaling) biases both equally, and keep the best run of
    # each: timing noise only ever slows a run down.
    off_runs, on_runs = [], []
    for _ in range(repeats):
        off_runs.append(
            _serve(deployment, cache_enabled=False, batch_size=batch_size)
        )
        on_runs.append(
            _serve(deployment, cache_enabled=True, batch_size=batch_size)
        )
    off = min(off_runs, key=lambda r: r["wall_s"])
    on = min(on_runs, key=lambda r: r["wall_s"])
    mismatches = sum(
        1
        for a, b in zip(on.pop("results"), off.pop("results"))
        if a.position != b.position or a.tag_id != b.tag_id
    )
    return {
        "batch_size": batch_size,
        "cache_on": on,
        "cache_off": off,
        "cache_speedup": on["localizations_per_s"] / off["localizations_per_s"],
        "position_mismatches": mismatches,
    }


def run_throughput_report(repeats: int = 5) -> dict:
    deployment = _build_world()
    # Warm both code paths once so neither run pays first-call overheads.
    _serve(
        deployment,
        cache_enabled=False,
        batch_size=len(TAGS),
        n_requests=len(TAGS),
    )
    return {
        "n_requests": N_REQUESTS,
        "n_tags": len(TAGS),
        "burst": _compare(deployment, batch_size=N_REQUESTS, repeats=repeats),
        "waves": _compare(deployment, batch_size=len(TAGS), repeats=repeats),
    }


def bench_service_cache_is_free_and_answer_neutral():
    report = run_throughput_report()
    emit(
        "Service throughput: interpolation cache on vs off "
        "(in-batch dedup is always on; see BENCH_engine_batch.json)",
        json.dumps(report, indent=2),
    )
    for shape in ("burst", "waves"):
        r = report[shape]
        assert r["position_mismatches"] == 0, shape  # bitwise-identical
        assert r["cache_on"]["cache_hit_rate"] > 0.5, shape
        assert r["cache_off"]["cache_hit_rate"] == 0.0, shape
        assert r["cache_on"]["degraded"] == 0, shape
        assert r["cache_speedup"] >= MIN_CACHE_SPEEDUP, (shape, r["cache_speedup"])


if __name__ == "__main__":
    import pathlib
    import sys

    out = run_throughput_report()
    text = json.dumps(out, indent=2)
    print(text)
    path = pathlib.Path(__file__).with_name("service_throughput.json")
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)
