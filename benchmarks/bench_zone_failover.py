"""Zone failover economics: kill a zone mid-run, lose no answers.

The acceptance bar for the failure-tolerant gateway (docs/ZONES.md,
"Failover"): on a 4-zone site with per-zone checkpoints, SIGKILL-ing
one of the zone workers at the halfway mark must

1. **Recover byte-identically** — after the gateway respawns the dead
   zone from its zone-identity checkpoint and replays the gap, the
   multi-zone witness document equals the uninterrupted run's, byte for
   byte.
2. **Keep availability >= 0.99** — measured as the fraction of
   zone-ticks served by a live worker.
3. **Cost <= 5% supervision overhead** — the supervised lockstep loop
   on a fault-free plan vs the bare (``failover=None``) loop, measured
   over the same seeded session.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_zone_failover.py -s

or standalone (also writes BENCH_zone_failover.json)::

    PYTHONPATH=src python benchmarks/bench_zone_failover.py
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.faults import FaultPlan, ZoneCrashFault
from repro.service.pipeline import ServiceConfig
from repro.zones import ZoneGateway, scaled_site_plan

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_zone_failover.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

ENV = "Env1"
N_ZONES = 4
KILL_ZONE = "z1"
SEED = 0
DURATION_S = 10.0
KILL_AT_S = DURATION_S / 2
AVAILABILITY_FLOOR = 0.99
OVERHEAD_CEILING = 0.05
OVERHEAD_REPEATS = 3

#: Same demanding query rate as bench_zone_scaleout: the estimator
#: dominates the tick, so supervision overhead is measured against a
#: realistic denominator rather than an idle loop.
CONFIG = ServiceConfig(query_interval_s=0.125, max_batch_size=16)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_benchmark() -> dict:
    plan = scaled_site_plan(ENV, N_ZONES, seed=SEED)
    crash = FaultPlan(
        faults=(ZoneCrashFault(zone_id=KILL_ZONE, at_s=KILL_AT_S),)
    )

    # 1) Recovery witness: uninterrupted vs killed-and-respawned, both
    #    with per-zone checkpoints enabled.
    with tempfile.TemporaryDirectory() as clean_dir:
        clean = ZoneGateway(
            plan, CONFIG, checkpoint_dir=clean_dir
        ).run(DURATION_S)
    with tempfile.TemporaryDirectory() as crash_dir:
        killed = ZoneGateway(
            plan, CONFIG, fault_plan=crash, checkpoint_dir=crash_dir
        ).run(DURATION_S)
    recovery_identical = _witness(killed) == _witness(clean)
    availability = killed.summary["availability"]

    # 2) Supervision overhead: supervised vs bare loop on a fault-free
    #    plan. One discarded warm-up, then interleaved best-of-N so
    #    scheduler drift hits both arms equally.
    ZoneGateway(plan, CONFIG, failover=None).run(DURATION_S)
    bare_s = supervised_s = float("inf")
    for _ in range(OVERHEAD_REPEATS):
        bare_s = min(
            bare_s,
            _timed(
                lambda: ZoneGateway(
                    plan, CONFIG, failover=None
                ).run(DURATION_S)
            )[0],
        )
        supervised_s = min(
            supervised_s,
            _timed(lambda: ZoneGateway(plan, CONFIG).run(DURATION_S))[0],
        )
    overhead = (supervised_s - bare_s) / bare_s if bare_s > 0 else 0.0

    return {
        "env": ENV,
        "n_zones": N_ZONES,
        "seed": SEED,
        "duration_s": DURATION_S,
        "kill": {
            "zone": KILL_ZONE,
            "at_s": KILL_AT_S,
            "crashes": int(killed.summary["zone_crashes"]),
            "respawns": int(killed.summary["zone_respawns"]),
            "zones_down_at_end": int(killed.summary["zones_down"]),
            "results": int(killed.summary["results"]),
            "clean_results": int(clean.summary["results"]),
        },
        "timing_s": {
            "bare_wall": round(bare_s, 4),
            "supervised_wall": round(supervised_s, 4),
        },
        "acceptance": {
            "availability_floor": AVAILABILITY_FLOOR,
            "availability": round(availability, 6),
            "availability_ok": availability >= AVAILABILITY_FLOOR,
            "recovery_identical": recovery_identical,
            "overhead_ceiling": OVERHEAD_CEILING,
            "overhead": round(overhead, 4),
            "overhead_ok": overhead <= OVERHEAD_CEILING,
        },
    }


def test_zone_failover_benchmark():
    report = run_benchmark()
    emit("zone failover", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["recovery_identical"], (
        "post-respawn answers are not byte-identical to the "
        "uninterrupted run"
    )
    assert acc["availability_ok"], (
        f"availability {acc['availability']} is below the "
        f"{AVAILABILITY_FLOOR} floor after killing {KILL_ZONE}"
    )
    assert acc["overhead_ok"], (
        f"supervision overhead {acc['overhead']:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%}: {report['timing_s']}"
    )


if __name__ == "__main__":
    out = run_benchmark()
    emit("zone failover", json.dumps(out, indent=2))
    ok = all(
        out["acceptance"][key]
        for key in ("availability_ok", "recovery_identical", "overhead_ok")
    )
    with open("BENCH_zone_failover.json", "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_zone_failover.json")
    raise SystemExit(0 if ok else 1)
