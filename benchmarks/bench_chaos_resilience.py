"""Resilience of the degraded-mode service under injected faults.

Two questions, both tied to the PR's acceptance bar:

1. **Single-reader outage** — with one of the four readers hard-down
   for most of the session, the partial-snapshot pipeline (quorum +
   VIRE-on-surviving-subset) must keep availability >= 99% with mean
   error within 2x of the fault-free run. The strict pipeline
   (``allow_partial=False``, the pre-faults behaviour) is measured next
   to it to show what the ladder buys.
2. **Intensity sweep** — availability and error across the chaos
   presets (none/light/moderate/severe), quantifying how the service
   decays as faults compound.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_chaos_resilience.py -s

or standalone (also writes benchmarks/chaos_resilience.json)::

    PYTHONPATH=src python benchmarks/bench_chaos_resilience.py
"""

from __future__ import annotations

import json

from repro import FaultPlan, ReaderOutageFault, ServiceConfig, chaos_preset
from repro.service import LocalizationService

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_chaos_resilience.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

DURATION_S = 60.0
SEED = 0
ENV = "Env1"

#: One reader dies shortly after serving starts and stays dead well past
#: the middleware's 30s staleness horizon.
OUTAGE = ReaderOutageFault(
    reader_id="reader-0", start_s=8.0, duration_s=float("inf")
)


def _run(plan: FaultPlan | None, *, allow_partial: bool = True) -> dict:
    config = ServiceConfig(query_interval_s=1.0, allow_partial=allow_partial)
    report = LocalizationService(config).run(ENV, DURATION_S, fault_plan=plan)
    s = report.summary
    reasons: dict[str, int] = {}
    for result in report.results:
        if result.reason is not None:
            reasons[result.reason] = reasons.get(result.reason, 0) + 1
    return {
        "requests": int(s["requests"]),
        "results": int(s["results"]),
        "availability": round(s["availability"], 6),
        "degraded": int(s["degraded"]),
        "degraded_reasons": {k: reasons[k] for k in sorted(reasons)},
        "breaker_transitions": int(s["breaker_transitions"]),
        "mean_error_m": round(report.mean_error_m, 4),
        "records_dropped_by_faults": int(s.get("fault_records_dropped", 0)),
    }


def run_benchmark() -> dict:
    fault_free = _run(None)

    outage_plan = FaultPlan(faults=(OUTAGE,), seed=SEED)
    outage_partial = _run(outage_plan)
    outage_strict = _run(outage_plan, allow_partial=False)

    sweep = {
        preset: _run(chaos_preset(preset, seed=SEED))
        for preset in ("none", "light", "moderate", "severe")
    }

    report = {
        "env": ENV,
        "seed": SEED,
        "duration_s": DURATION_S,
        "fault_free": fault_free,
        "single_reader_outage": {
            "partial": outage_partial,
            "strict": outage_strict,
        },
        "preset_sweep": sweep,
        "acceptance": {
            "availability_floor": 0.99,
            "error_ratio_ceiling": 2.0,
            "availability_ok": outage_partial["availability"] >= 0.99,
            "error_ratio": round(
                outage_partial["mean_error_m"] / fault_free["mean_error_m"], 4
            ),
            "error_ratio_ok": (
                outage_partial["mean_error_m"]
                <= 2.0 * fault_free["mean_error_m"]
            ),
        },
    }
    return report


def test_chaos_resilience_benchmark():
    report = run_benchmark()
    emit("chaos resilience", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["availability_ok"], (
        "availability under single-reader outage fell below 99%: "
        f"{report['single_reader_outage']['partial']['availability']}"
    )
    assert acc["error_ratio_ok"], (
        f"degraded-mode error ratio {acc['error_ratio']} exceeds 2x fault-free"
    )
    # The subset path must actually be exercised, not accidentally healthy.
    assert (
        report["single_reader_outage"]["partial"]["degraded_reasons"].get(
            "partial_readers", 0
        )
        > 0
    )


if __name__ == "__main__":
    out = run_benchmark()
    emit("chaos resilience", json.dumps(out, indent=2))
    with open("benchmarks/chaos_resilience.json", "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print("wrote benchmarks/chaos_resilience.json")
