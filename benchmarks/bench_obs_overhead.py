"""Tracer overhead: instrumented hot path with tracing off vs on.

The ISSUE-5 acceptance bar for :mod:`repro.obs`: the instrumentation
threaded through ``core.estimator`` and ``engine.batch`` must cost

* **<= 5 %** with the tracer *disabled* (the ambient ``NULL_TRACER`` —
  the production default; every instrumentation point is one
  context-variable read plus a no-op context manager), and
* **<= 15 %** with a real :class:`~repro.obs.Tracer` *enabled*
  (span allocation, attribute coercion, wall-clock reads),

measured against the same workload with the per-call instrumentation
overhead subtracted out via a pre-warmed reference loop — and in every
mode the answers must stay **bitwise identical**: tracing may never
perturb a coordinate.

The workload is the serving system's hot unit: scalar ``estimate`` calls
plus one vectorized ``estimate_batch`` pass over the paper testbed.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_obs_overhead.py -s

or standalone (also writes ``BENCH_obs_overhead.json`` at the repo
root)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro import VIREConfig, VIREEstimator, paper_testbed_grid
from repro.experiments.measurement import TrialSampler
from repro.obs import Tracer, use_tracer
from repro.rf import env3

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_obs_overhead.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


T_TAGS = 48
REPEATS = 9
SEED = 42
DISABLED_BUDGET = 0.05  # +5% max with the null tracer
ENABLED_BUDGET = 0.15   # +15% max with a recording tracer


def _build_workload():
    grid = paper_testbed_grid()
    sampler = TrialSampler(env3(), grid, seed=0)
    rng = np.random.default_rng(SEED)
    xmax, ymax = grid.tag_positions().max(axis=0)
    positions = rng.uniform(0.2, 0.9, (T_TAGS, 2)) * [xmax, ymax]
    readings = [
        sampler.reading_for((float(x), float(y))) for x, y in positions
    ]
    est = VIREEstimator(grid, VIREConfig(target_total_tags=900))
    return est, readings


def _run_once(est, readings):
    scalar = [est.estimate(r) for r in readings]
    batch = est.estimate_batch(readings)
    return scalar, batch


def _fingerprint(scalar, batch) -> list[str]:
    """Bitwise hex rendering of every produced coordinate."""
    out = []
    for result in (*scalar, *batch):
        out.append(float(result.position[0]).hex())
        out.append(float(result.position[1]).hex())
    return out


def _time_mode(est, readings, tracer=None) -> tuple[float, list[str]]:
    """Best-of-``REPEATS`` wall for one tracer mode.

    ``tracer=None`` runs under the ambient default (the null tracer);
    otherwise a fresh recording tracer is installed per repeat so span
    accumulation cannot grow across iterations.
    """
    _run_once(est, readings)  # warm caches and code paths
    best = float("inf")
    fingerprint = None
    for _ in range(REPEATS):
        if tracer is None:
            t0 = time.perf_counter()
            scalar, batch = _run_once(est, readings)
            wall = time.perf_counter() - t0
        else:
            live = Tracer()
            with use_tracer(live):
                t0 = time.perf_counter()
                scalar, batch = _run_once(est, readings)
                wall = time.perf_counter() - t0
        best = min(best, wall)
        fingerprint = _fingerprint(scalar, batch)
    return best, fingerprint


def _null_site_cost_s(samples: int = 200_000) -> float:
    """Wall cost of ONE disabled instrumentation point.

    This is exactly what the hot paths pay when no tracer is installed:
    a context-variable read, a kwargs dict, and the shared no-op span's
    ``__enter__``/``__exit__``.
    """
    from repro.obs import current_tracer

    t0 = time.perf_counter()
    for _ in range(samples):
        with current_tracer().span("bench.site", tag="x", masked=False):
            pass
    return (time.perf_counter() - t0) / samples


def run_benchmark() -> dict:
    est, readings = _build_workload()
    # Interleaving order: disabled / enabled / disabled-again; the two
    # disabled passes expose timer drift over the run.
    disabled_1, fp_disabled = _time_mode(est, readings)
    enabled, fp_enabled = _time_mode(est, readings, tracer=Tracer)
    disabled_2, fp_disabled_2 = _time_mode(est, readings)
    disabled = min(disabled_1, disabled_2)
    noise = abs(disabled_1 - disabled_2) / disabled

    # Count the instrumentation points one workload actually hits, then
    # price the disabled path analytically: sites x no-op cost. This is
    # the true overhead vs hypothetically-uninstrumented code, immune to
    # the timer noise that dwarfs it in an end-to-end A/B.
    spans_tracer = Tracer()
    with use_tracer(spans_tracer):
        _run_once(est, readings)
    site_cost = _null_site_cost_s()
    disabled_overhead = (
        spans_tracer.spans_recorded * site_cost / max(disabled, 1e-12)
    )

    report = {
        "benchmark": "obs_overhead",
        "t_tags": T_TAGS,
        "repeats": REPEATS,
        "seed": SEED,
        "workload": f"{T_TAGS} scalar estimates + one estimate_batch pass",
        "disabled_wall_s": disabled,
        "disabled_walls_s": [disabled_1, disabled_2],
        "enabled_wall_s": enabled,
        "timer_noise_fraction": round(noise, 4),
        "instrumentation_points_per_workload": spans_tracer.spans_recorded,
        "null_site_cost_ns": round(1e9 * site_cost, 1),
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "enabled_overhead_fraction": round((enabled - disabled) / disabled, 6),
    }
    report["acceptance"] = {
        "disabled_budget": DISABLED_BUDGET,
        "enabled_budget": ENABLED_BUDGET,
        "disabled_ok": report["disabled_overhead_fraction"]
        <= DISABLED_BUDGET,
        "enabled_ok": report["enabled_overhead_fraction"] <= ENABLED_BUDGET,
        "bitwise_identical": fp_disabled == fp_enabled == fp_disabled_2,
    }
    return report


def bench_obs_overhead():
    report = run_benchmark()
    emit(
        "Tracer overhead: disabled (null) vs enabled (recording)",
        json.dumps(report, indent=2),
    )
    acc = report["acceptance"]
    assert acc["bitwise_identical"], "tracing perturbed the answers"
    assert acc["disabled_ok"], (
        f"disabled-tracer overhead "
        f"{report['disabled_overhead_fraction']:+.2%} exceeds "
        f"{DISABLED_BUDGET:.0%}"
    )
    assert acc["enabled_ok"], (
        f"enabled-tracer overhead "
        f"{report['enabled_overhead_fraction']:+.1%} exceeds "
        f"{ENABLED_BUDGET:.0%}"
    )


if __name__ == "__main__":
    import pathlib
    import sys

    out = run_benchmark()
    text = json.dumps(out, indent=2)
    print(text)
    path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_obs_overhead.json"
    )
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)
    acc = out["acceptance"]
    if not (acc["disabled_ok"] and acc["enabled_ok"]
            and acc["bitwise_identical"]):
        print("acceptance FAILED", file=sys.stderr)
        sys.exit(1)
