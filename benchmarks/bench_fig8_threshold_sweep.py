"""Fig. 8: accuracy vs the elimination threshold (Env3, N² = 900).

Regenerates the U-shaped threshold curve and benchmarks a
fixed-threshold VIRE estimate.
"""

from __future__ import annotations

from repro import VIREConfig, VIREEstimator
from repro.experiments.figures import fig8, format_fig8

from .conftest import emit


def bench_fig8_threshold(benchmark, grid, env3_reading):
    result = fig8(n_trials=8, base_seed=0)
    emit("Fig. 8 — threshold vs accuracy", format_fig8(result))

    # Shape assertion: U-curve (both extremes worse than the interior
    # minimum).
    errors = result.mean_error
    assert errors.min() < errors[0]
    assert errors.min() < errors[-1]

    estimator = VIREEstimator(
        grid,
        VIREConfig(
            target_total_tags=900,
            threshold_mode="fixed",
            fixed_threshold_db=2.5,
            empty_fallback="landmarc",
        ),
    )
    out = benchmark(estimator.estimate, env3_reading)
    assert out.position is not None
