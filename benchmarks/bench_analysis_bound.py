"""Analysis: estimators vs the Cramér–Rao bound.

For each environment, compares the measured RMS error of LANDMARC and
VIRE on interior probe points against the information-theoretic floor of
the deterministic channel at the environment's effective noise level.
The gap above the bound is the price of the frozen-world distortions
(shadowing, offsets, multipath) that the bound does not model.
"""

from __future__ import annotations

import numpy as np

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    corner_reader_positions,
)
from repro.analysis.crlb import average_crlb
from repro.experiments.measurement import TrialSampler
from repro.rf import env1, env2, env3
from repro.utils.ascii import format_table

from .conftest import emit

PROBES = [(1.3, 1.7), (2.1, 1.2), (1.0, 2.2), (1.8, 1.9)]


def bench_estimators_vs_crlb(benchmark, grid):
    readers = corner_reader_positions(grid)
    rows = []
    for factory in (env1, env2, env3):
        env = factory()
        landmarc, vire = LandmarcEstimator(), VIREEstimator(
            grid, VIREConfig(target_total_tags=900)
        )
        errs_lm, errs_vi = [], []
        for seed in range(8):
            sampler = TrialSampler(env, grid, seed=seed)
            for pos in PROBES:
                reading = sampler.reading_for(pos)
                errs_lm.append(landmarc.estimate(reading).error_to(pos))
                errs_vi.append(vire.estimate(reading).error_to(pos))
        # Effective per-reader sigma, measured from the channel itself:
        # std of the n_reads-averaged reading at a fixed point in a fixed
        # frozen world (pure measurement scatter, no field distortion).
        channel = env.build_channel(readers, seed=0)
        rng = np.random.default_rng(0)
        repeated = np.array(
            [
                channel.sample_rssi(
                    0, np.array([[1.5, 1.5]]), rng, n_reads=10
                ).mean()
                for _ in range(200)
            ]
        )
        sigma_eff = float(repeated.std())
        bound = average_crlb(
            grid, readers, gamma=env.path_loss.gamma, sigma_db=sigma_eff
        )
        rows.append(
            [
                env.name,
                bound,
                float(np.sqrt(np.mean(np.square(errs_vi)))),
                float(np.sqrt(np.mean(np.square(errs_lm)))),
            ]
        )
    emit(
        "Analysis — RMS error vs Cramér–Rao bound (interior probes)",
        format_table(
            ["env", "CRLB (m)", "VIRE RMS (m)", "LANDMARC RMS (m)"], rows
        ),
    )
    for _, bound, vire_rms, lm_rms in rows:
        # Nobody beats the measurement-noise floor; the gap above it is
        # the frozen-field distortion the bound does not model.
        assert vire_rms >= bound
        assert vire_rms <= lm_rms * 1.05

    out = benchmark(
        average_crlb, grid, readers, gamma=2.8, sigma_db=1.5, resolution=9
    )
    assert out > 0
