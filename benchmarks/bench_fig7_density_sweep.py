"""Fig. 7: accuracy vs the number of virtual reference tags (Env3).

Regenerates the density sweep and benchmarks the interpolation kernel
at the paper's densest setting (the cost that actually scales with N²).
"""

from __future__ import annotations

import numpy as np

from repro import VirtualGrid
from repro.core.interpolation import BilinearInterpolator
from repro.experiments.figures import fig7, format_fig7

from .conftest import emit


def bench_fig7_virtual_tag_density(benchmark, grid):
    result = fig7(
        total_tag_targets=(16, 100, 300, 600, 900, 1200, 1500),
        n_trials=8,
        base_seed=0,
    )
    emit("Fig. 7 — virtual tag density vs accuracy", format_fig7(result))

    # Shape assertion: sharp improvement from the real grid, then plateau.
    assert result.mean_error[0] > result.mean_error[-1]
    tail = result.mean_error[-3:]
    assert tail.max() - tail.min() < 0.15

    vgrid = VirtualGrid.for_target_count(grid, 1500)
    lattice = np.random.default_rng(0).uniform(-90, -50, (4, 4))
    interpolator = BilinearInterpolator()

    out = benchmark(interpolator.interpolate, lattice, vgrid)
    assert out.shape == vgrid.shape
