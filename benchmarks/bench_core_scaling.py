"""Performance scaling of the VIRE pipeline with virtual-tag density.

Not a paper figure: quantifies the O(K * N²) per-estimate cost claim in
the estimator docs across the Fig. 7 density axis, plus the full
event-driven testbed step cost.
"""

from __future__ import annotations

import pytest

from repro import (
    VIREConfig,
    VIREEstimator,
    build_paper_deployment,
)
from repro.rf import env3


@pytest.mark.parametrize("total_tags", [100, 400, 900, 2500])
def bench_vire_estimate_scaling(benchmark, grid, env3_reading, total_tags):
    estimator = VIREEstimator(grid, VIREConfig(target_total_tags=total_tags))
    out = benchmark(estimator.estimate, env3_reading)
    assert out.diagnostics["total_virtual_tags"] >= total_tags


def bench_testbed_simulation_second(benchmark):
    """Cost of simulating one second of the full 20-tag testbed."""
    deployment = build_paper_deployment(
        env3(),
        tracking_tags={"asset": (1.5, 1.5)},
        seed=0,
    )
    deployment.simulator.run_for(5.0)  # warm structures

    benchmark(deployment.simulator.run_for, 1.0)


def bench_channel_matrix(benchmark, env3_sampler):
    """Cost of one full (4 readers x 17 tags x 10 reads) RSSI matrix."""
    import numpy as np

    positions = np.vstack(
        [env3_sampler.reference_positions, [[1.5, 1.5]]]
    )
    rng = np.random.default_rng(0)

    out = benchmark(
        env3_sampler.channel.sample_rssi_matrix, positions, rng, n_reads=10
    )
    assert out.shape == (4, 17)
