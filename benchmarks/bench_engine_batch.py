"""Batch-engine throughput: ``estimate_batch`` vs the scalar loop.

Two scored regimes at **T=64** on the paper's 4-reader lattice, each
gated at **>=5x** the localizations/sec of the scalar
``[est.estimate(r) for r in readings]`` loop while staying bitwise
identical:

* *snapshot* — all T tags against one frozen reference lattice (the
  service micro-batch shape; the original ISSUE-3 bar);
* *independent* — every reading carries its own reference draw. Since
  the content-grouped path (ISSUE-10), unique lattices are deduped by
  byte content and pushed through one precomputed sparse bilinear
  operator, so this regime is scored too — it is the common shape of
  real traffic.

A third (tolerance-scored, not bitwise) regime measures the opt-in
``precision="relaxed"`` float32 tier on the independent workload: its
speedup, its max-abs position deviation from the scalar path (gated at
``RELAXED_TOL``), and that it makes identical degradation-ladder
decisions.

Run it via pytest (prints the JSON report)::

    pytest benchmarks/bench_engine_batch.py -s

or standalone (also writes ``BENCH_engine_batch.json`` at the repo
root)::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from repro import VIREConfig, VIREEstimator, paper_testbed_grid
from repro.experiments.measurement import TrialSampler
from repro.rf import env3

try:
    from .conftest import emit
except ImportError:  # standalone: python benchmarks/bench_engine_batch.py

    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


T_TAGS = 64
REPEATS = 7
TARGET_SPEEDUP = 5.0
#: Relaxed-tier bound on max-abs position deviation from the scalar
#: path (metres). Mirrors tests/test_engine_differential.RELAXED_TOL.
RELAXED_TOL = 1e-4
SEED = 42


def _build_readings():
    """T readings on the paper testbed, in both batching regimes.

    *snapshot*: all T tags observed against one frozen reference lattice
    (the streaming service's micro-batch shape — reference tags are
    static, so every request in a batch sees the same lattice);
    *independent*: each reading keeps its own reference draw (the
    experiment-runner shape, one fresh world per trial).
    """
    grid = paper_testbed_grid()
    sampler = TrialSampler(env3(), grid, seed=0)
    rng = np.random.default_rng(SEED)
    xmax, ymax = grid.tag_positions().max(axis=0)
    positions = rng.uniform(0.3, 0.9, (T_TAGS, 2)) * [xmax, ymax]
    independent = [sampler.reading_for((float(x), float(y))) for x, y in positions]
    lattice = independent[0].reference_rssi
    snapshot = [replace(r, reference_rssi=lattice) for r in independent]
    return grid, snapshot, independent


def _identical(scalar, batch) -> int:
    """Count bitwise mismatches between the two result lists."""
    mismatches = 0
    for a, b in zip(scalar, batch):
        same = [float(x).hex() for x in a.position] == [
            float(x).hex() for x in b.position
        ] and a.diagnostics == b.diagnostics
        mismatches += 0 if same else 1
    return mismatches


def _time_regime(est: VIREEstimator, readings) -> dict:
    """Best-of-``REPEATS`` walls for the scalar loop and the batch pass.

    Interleaved so machine-load drift biases both paths equally; best-of
    because timing noise only ever slows a run down.
    """
    est.estimate(readings[0])  # warm both code paths
    est.estimate_batch(readings[:4])
    best_scalar = best_batch = float("inf")
    scalar = batch = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        scalar = [est.estimate(r) for r in readings]
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch = est.estimate_batch(readings)
        best_batch = min(best_batch, time.perf_counter() - t0)
    return {
        "scalar_wall_s": best_scalar,
        "batch_wall_s": best_batch,
        "scalar_localizations_per_s": len(readings) / best_scalar,
        "batch_localizations_per_s": len(readings) / best_batch,
        "speedup": best_scalar / best_batch,
        "position_mismatches": _identical(scalar, batch),
    }


def _time_relaxed(est: VIREEstimator, readings) -> dict:
    """The float32 tier on the same workload: speedup + tolerance.

    Scalar float64 results are the reference; the relaxed tier must stay
    within ``RELAXED_TOL`` of them while making the same ladder
    decisions (here: every reading succeeds without fallback in both).
    """
    from repro.engine.batch import BatchEngine

    engine = BatchEngine(est, precision="relaxed")
    engine.estimate_batch(readings[:4])  # warm
    best_scalar = best_relaxed = float("inf")
    scalar = relaxed = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        scalar = [est.estimate(r) for r in readings]
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        relaxed = engine.estimate_batch(readings)
        best_relaxed = min(best_relaxed, time.perf_counter() - t0)
    max_abs_err = max(
        max(abs(r.position[0] - s.position[0]), abs(r.position[1] - s.position[1]))
        for s, r in zip(scalar, relaxed)
    )
    ladder_mismatches = sum(
        1
        for s, r in zip(scalar, relaxed)
        if s.diagnostics.get("fallback") != r.diagnostics.get("fallback")
    )
    return {
        "scalar_wall_s": best_scalar,
        "relaxed_wall_s": best_relaxed,
        "relaxed_localizations_per_s": len(readings) / best_relaxed,
        "speedup": best_scalar / best_relaxed,
        "max_abs_position_error_m": max_abs_err,
        "ladder_mismatches": ladder_mismatches,
    }


def run_benchmark() -> dict:
    grid, snapshot, independent = _build_readings()
    est = VIREEstimator(grid, VIREConfig(target_total_tags=900))
    report = {
        "benchmark": "engine_batch",
        "t_tags": T_TAGS,
        "n_readers": 4,
        "grid": f"{grid.rows}x{grid.cols} paper testbed",
        "config": {"target_total_tags": 900},
        "seed": SEED,
        "repeats": REPEATS,
        # Scored: T tags against one snapshot (the original ISSUE-3 bar).
        "snapshot": _time_regime(est, snapshot),
        # Scored since ISSUE-10: per-reading reference draws through the
        # content-grouped sparse-operator path.
        "independent": _time_regime(est, independent),
        # Tolerance-scored: the opt-in float32 tier on the independent
        # workload.
        "relaxed_independent": _time_relaxed(est, independent),
    }
    relaxed = report["relaxed_independent"]
    report["acceptance"] = {
        "target_speedup": TARGET_SPEEDUP,
        "snapshot_speedup": round(report["snapshot"]["speedup"], 2),
        "independent_speedup": round(report["independent"]["speedup"], 2),
        "snapshot_ok": report["snapshot"]["speedup"] >= TARGET_SPEEDUP,
        "independent_ok": report["independent"]["speedup"] >= TARGET_SPEEDUP,
        "bitwise_identical": (
            report["snapshot"]["position_mismatches"] == 0
            and report["independent"]["position_mismatches"] == 0
        ),
        "relaxed_tolerance": RELAXED_TOL,
        "relaxed_ok": (
            relaxed["max_abs_position_error_m"] <= RELAXED_TOL
            and relaxed["ladder_mismatches"] == 0
        ),
    }
    report["acceptance"]["passed"] = (
        report["acceptance"]["snapshot_ok"]
        and report["acceptance"]["independent_ok"]
        and report["acceptance"]["bitwise_identical"]
        and report["acceptance"]["relaxed_ok"]
    )
    return report


def bench_engine_batch_speedup():
    report = run_benchmark()
    emit("Batch engine: estimate_batch vs scalar loop", json.dumps(report, indent=2))
    acc = report["acceptance"]
    assert acc["bitwise_identical"], report
    assert acc["snapshot_ok"], (
        f"snapshot speedup {acc['snapshot_speedup']}x below the "
        f"{TARGET_SPEEDUP}x acceptance bar"
    )
    assert acc["independent_ok"], (
        f"independent-path speedup {acc['independent_speedup']}x below the "
        f"{TARGET_SPEEDUP}x acceptance bar"
    )
    assert acc["relaxed_ok"], (
        "relaxed tier out of tolerance: "
        f"{report['relaxed_independent']}"
    )


if __name__ == "__main__":
    import pathlib
    import sys

    out = run_benchmark()
    text = json.dumps(out, indent=2)
    print(text)
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine_batch.json"
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)
    if not out["acceptance"]["passed"]:
        print("acceptance FAILED", file=sys.stderr)
        sys.exit(1)
