#!/usr/bin/env python
"""Visualize the elimination process (paper §4.3, Fig. 5) as ASCII art.

Shows each reader's proximity map over the 31x31 virtual lattice, the
intersection that survives elimination, and where the weighted centroid
lands relative to the true tag. This is the pedagogical heart of VIRE:
individually each reader admits a broad annulus of candidate cells;
intersecting the four annuli collapses the candidates to a small cluster
around the truth.

Run:  python examples/elimination_visualized.py
"""

from __future__ import annotations

import numpy as np

from repro import VIREConfig, VIREEstimator, paper_testbed_grid
from repro.core.elimination import eliminate
from repro.core.proximity import build_proximity_maps, rssi_deviations
from repro.experiments.measurement import TrialSampler
from repro.rf import env3
from repro.utils.ascii import proximity_map_art

TRUE_POSITION = (1.45, 1.55)


def downsample(mask: np.ndarray, step: int = 2) -> np.ndarray:
    """Thin the lattice so the art fits a terminal."""
    return mask[::step, ::step]


def main() -> None:
    grid = paper_testbed_grid()
    sampler = TrialSampler(env3(), grid, seed=3)
    reading = sampler.reading_for(TRUE_POSITION)

    vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
    virtual = vire.interpolate_reading(reading)
    deviations = rssi_deviations(virtual, reading.tracking_rssi)
    threshold = vire.select_threshold(deviations)
    maps = build_proximity_maps(deviations, threshold)
    survived = eliminate(maps)

    print(
        f"tracking tag at {TRUE_POSITION}, adaptive threshold "
        f"{threshold:.2f} dB, lattice {vire.virtual_grid.shape}"
    )
    corner = ("SW", "SE", "NW", "NE")
    for pm in maps:
        print(
            f"\nreader {pm.reader_index} ({corner[pm.reader_index]}): "
            f"{pm.area} candidate cells"
        )
        print(proximity_map_art(downsample(pm.mask), on="#", off="."))

    print(f"\nintersection (elimination): {int(survived.sum())} cells survive")
    print(proximity_map_art(downsample(survived), on="#", off="."))

    estimate = vire.estimate(reading)
    print(
        f"\nweighted centroid: ({estimate.x:.2f}, {estimate.y:.2f}) — "
        f"error {estimate.error_to(TRUE_POSITION):.2f} m"
    )


if __name__ == "__main__":
    main()
