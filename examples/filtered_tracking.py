#!/usr/bin/env python
"""Mobility (§6 future work): track a moving asset with motion filters.

A tag is carried on a loop through the Env3 office at walking speed.
Every 4 s the tracker pulls a middleware snapshot, runs VIRE, and feeds
the fix through four different filters. The constant-velocity Kalman
filter roughly halves the raw per-fix RMSE by exploiting motion
continuity — the layer the paper left as future work.

Run:  python examples/filtered_tracking.py
"""

from __future__ import annotations

from repro import (
    SmoothingSpec,
    VIREConfig,
    VIREEstimator,
    build_paper_deployment,
)
from repro.rf import env3
from repro.tracking import (
    AlphaBetaFilter,
    KalmanFilter2D,
    MovingAverageFilter,
    NoFilter,
    TagTracker,
    Trajectory,
    evaluate_track,
)
from repro.utils.ascii import format_table

#: A loop through the office at 0.25 m/s, starting after warm-up.
ROUTE = Trajectory.constant_speed(
    [(0.5, 0.5), (2.5, 0.7), (2.4, 2.5), (0.6, 2.4), (0.5, 0.5)],
    speed_mps=0.15,
    start_time_s=10.0,
)

FIX_INTERVAL_S = 3.0


def main() -> None:
    deployment = build_paper_deployment(
        env3(),
        tracking_tags={"asset": ROUTE.position_at(0.0)},
        seed=11,
        # Reference tags are static: deep window smoothing is free
        # accuracy. The moving tag gets "latest" so readings stay
        # current; temporal smoothing is delegated to the position
        # filters below.
        smoothing=SmoothingSpec(mode="window", window=10),
        tracking_smoothing=SmoothingSpec(mode="window", window=2),
    )
    simulator = deployment.simulator
    vire = VIREEstimator(deployment.grid, VIREConfig(target_total_tags=900))

    filters = {
        "raw": NoFilter(),
        "moving-average(4)": MovingAverageFilter(4),
        "alpha-beta": AlphaBetaFilter(alpha=0.45, beta=0.1),
        "kalman (CV)": KalmanFilter2D(measurement_sigma_m=0.8,
                                      process_accel=0.08),
    }
    trackers = {name: TagTracker(vire, f) for name, f in filters.items()}

    simulator.warm_up()
    while simulator.now < ROUTE.end_time_s:
        deployment.move_tracking_tag(
            "asset", ROUTE.position_at(simulator.now)
        )
        simulator.run_for(FIX_INTERVAL_S)
        for tracker in trackers.values():
            tracker.ingest_from(
                simulator.now, lambda: simulator.reading_for("asset")
            )

    rows = []
    for name, tracker in trackers.items():
        stats = evaluate_track(ROUTE, tracker.fixes())
        rows.append([name, stats.rmse_m, stats.p90_m, stats.max_m,
                     tracker.dropout_count])
    print(
        format_table(
            ["filter", "RMSE (m)", "p90 (m)", "max (m)", "dropouts"],
            rows,
            title=(
                f"tracking a {ROUTE.length_m:.1f} m loop in Env3 "
                f"({len(trackers['raw'].history)} fixes)"
            ),
        )
    )


if __name__ == "__main__":
    main()
