#!/usr/bin/env python
"""Quickstart: compare VIRE with LANDMARC on the paper's testbed.

Builds the paper's §5 setup (4x4 reference grid at 1 m spacing, four
corner readers, the nine Fig. 2(a) tracking tags) inside the cluttered
Env3 office, runs both estimators over a handful of Monte-Carlo trials,
and prints the per-tag comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    paper_scenario,
    run_scenario,
)
from repro.utils.ascii import format_table


def main() -> None:
    scenario = paper_scenario("Env3", n_trials=10, base_seed=0)
    vire = VIREEstimator(
        scenario.grid, VIREConfig(target_total_tags=900)  # paper's N² ~ 900
    )
    result = run_scenario(scenario, [LandmarcEstimator(), vire])

    landmarc_errors = result.by_name("LANDMARC").tag_means()
    vire_errors = result.by_name("VIRE").tag_means()

    rows = []
    for tag in sorted(landmarc_errors):
        lm, vi = landmarc_errors[tag], vire_errors[tag]
        rows.append([tag, lm, vi, f"{100 * (1 - vi / lm):+.0f}%"])
    print(
        format_table(
            ["Tag", "LANDMARC (m)", "VIRE (m)", "reduction"],
            rows,
            title=f"VIRE vs LANDMARC in {scenario.environment.name} "
            f"({scenario.n_trials} trials)",
        )
    )

    lm_avg = result.by_name("LANDMARC").summary().mean
    vi_avg = result.by_name("VIRE").summary().mean
    print(
        f"\noverall: LANDMARC {lm_avg:.3f} m -> VIRE {vi_avg:.3f} m "
        f"({100 * (1 - vi_avg / lm_avg):.0f}% error reduction)"
    )


if __name__ == "__main__":
    main()
