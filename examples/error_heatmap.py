#!/usr/bin/env python
"""Spatial error maps: where in the room do estimators fail?

Probes LANDMARC and VIRE over a lattice covering the sensing area plus
a 0.5 m ring beyond it (Tag 9 territory) in Env3, and renders both error
surfaces as character heatmaps. The boundary ring lighting up — and
VIRE's map being uniformly lighter — is Fig. 2(b)/Fig. 6 in spatial form.

Run:  python examples/error_heatmap.py
"""

from __future__ import annotations

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    paper_testbed_grid,
)
from repro.analysis import format_heatmap, spatial_error_map
from repro.rf import env3


def main() -> None:
    grid = paper_testbed_grid()
    env = env3()
    estimators = [
        LandmarcEstimator(),
        VIREEstimator(grid, VIREConfig(target_total_tags=900)),
    ]
    maps = [
        spatial_error_map(
            env, grid, est, resolution=9, n_trials=4, pad_m=0.5
        )
        for est in estimators
    ]
    # A common colour scale makes the two maps comparable.
    vmax = max(m.mean_error.max() for m in maps)
    for emap in maps:
        print(format_heatmap(emap, vmax=vmax))
        print()

    lm, vi = maps
    interior = (slice(2, -2), slice(2, -2))
    print(
        f"interior mean: LANDMARC {lm.mean_error[interior].mean():.2f} m, "
        f"VIRE {vi.mean_error[interior].mean():.2f} m"
    )
    ring_mean_lm = (lm.mean_error.sum() - lm.mean_error[interior].sum()) / (
        lm.mean_error.size - lm.mean_error[interior].size
    )
    ring_mean_vi = (vi.mean_error.sum() - vi.mean_error[interior].sum()) / (
        vi.mean_error.size - vi.mean_error[interior].size
    )
    print(
        f"boundary ring mean: LANDMARC {ring_mean_lm:.2f} m, "
        f"VIRE {ring_mean_vi:.2f} m"
    )


if __name__ == "__main__":
    main()
