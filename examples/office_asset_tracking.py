#!/usr/bin/env python
"""Track a moving asset through the Env3 office with the full testbed.

Unlike the quickstart (which samples readings directly from the channel),
this example drives the complete event-driven stack: active tags beacon
every ~2 s, the four readers receive through the Env3 channel, the
middleware smooths per-(reader, tag) series, and VIRE localizes the
asset as it is carried from desk to desk — including a person walking
through the testbed mid-experiment (paper §4.1's disturbance).

Run:  python examples/office_asset_tracking.py
"""

from __future__ import annotations

from repro import (
    HumanMovementDisturbance,
    SmoothingSpec,
    VIREConfig,
    VIREEstimator,
    build_paper_deployment,
)
from repro.rf import env3
from repro.utils.ascii import format_table

#: Waypoints of the asset: picked up near the SW desk, carried across
#: the room, parked at the NE corner.
ASSET_ROUTE = [
    (0.6, 0.5),
    (1.2, 1.4),
    (1.9, 1.8),
    (2.5, 2.4),
]

#: Dwell time at each waypoint before the next snapshot (seconds).
DWELL_S = 24.0


def main() -> None:
    walker = HumanMovementDisturbance(
        waypoints=((3.5, -1.0), (-0.5, 3.5)),
        speed_mps=0.6,
        attenuation_db=9.0,
        start_time_s=30.0,
    )
    deployment = build_paper_deployment(
        env3(),
        tracking_tags={"asset": ASSET_ROUTE[0]},
        seed=7,
        smoothing=SmoothingSpec(mode="window", window=8),
        disturbances=[walker],
    )
    simulator = deployment.simulator
    vire = VIREEstimator(deployment.grid, VIREConfig(target_total_tags=900))

    simulator.warm_up()
    print(
        f"testbed warm at t={simulator.now:.0f}s: "
        f"{simulator.middleware.records_ingested} readings ingested"
    )

    rows = []
    for waypoint in ASSET_ROUTE:
        deployment.move_tracking_tag("asset", waypoint)
        simulator.run_for(DWELL_S)
        reading = simulator.reading_for("asset")
        estimate = vire.estimate(reading)
        err = estimate.error_to(waypoint)
        walking = walker.position_at(simulator.now) is not None
        rows.append(
            [
                f"{simulator.now:.0f}s",
                f"({waypoint[0]:.1f}, {waypoint[1]:.1f})",
                f"({estimate.x:.2f}, {estimate.y:.2f})",
                err,
                "yes" if walking else "no",
            ]
        )

    print(
        format_table(
            ["t", "true position", "VIRE estimate", "error (m)", "person walking"],
            rows,
            title="\nasset trajectory through the Env3 office",
        )
    )
    frames = sum(r.frames_received for r in simulator.readers)
    dropped = sum(r.frames_dropped for r in simulator.readers)
    print(f"\nframes received {frames}, dropped at sensitivity {dropped}")


if __name__ == "__main__":
    main()
