#!/usr/bin/env python
"""Boundary tags: the paper's §6 future work, implemented.

Tag 9 of Fig. 2(a) sits slightly outside the reference grid and shows
the worst accuracy — plain VIRE (like LANDMARC) can only ever output a
point inside the convex hull of its candidates. This example compares
plain VIRE with the BoundaryAwareEstimator, which detects edge-crowded
eliminations and re-estimates on a virtual lattice extrapolated one
physical cell beyond the real grid.

Run:  python examples/boundary_compensation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BOUNDARY_TAGS,
    NON_BOUNDARY_TAGS,
    BoundaryAwareEstimator,
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    paper_scenario,
    run_scenario,
)
from repro.utils.ascii import format_table

N_TRIALS = 12


def main() -> None:
    scenario = paper_scenario("Env3", n_trials=N_TRIALS, base_seed=0)
    config = VIREConfig(target_total_tags=900)
    estimators = [
        LandmarcEstimator(),
        VIREEstimator(scenario.grid, config),
        BoundaryAwareEstimator(scenario.grid, config, extension_cells=1),
    ]
    result = run_scenario(scenario, estimators)

    names = ["LANDMARC", "VIRE", "VIRE+boundary"]
    rows = []
    for tag in sorted(scenario.tracking_tags):
        row = [tag, "boundary" if tag in BOUNDARY_TAGS else "interior"]
        row.extend(result.by_name(n).tag_means()[tag] for n in names)
        rows.append(row)
    print(
        format_table(
            ["Tag", "kind", *names],
            rows,
            title=f"per-tag mean error (m), Env3, {N_TRIALS} trials",
        )
    )

    print("\ngroup means (m):")
    for group, tags in (("interior", NON_BOUNDARY_TAGS),
                        ("boundary", BOUNDARY_TAGS)):
        vals = [result.by_name(n).summary(tags=tags).mean for n in names]
        print(
            f"  {group:9s} " +
            "  ".join(f"{n}={v:.3f}" for n, v in zip(names, vals))
        )

    plain9 = result.by_name("VIRE").tag_means()[9]
    aware9 = result.by_name("VIRE+boundary").tag_means()[9]
    print(
        f"\nTag 9 (outside the grid): plain VIRE {plain9:.3f} m vs "
        f"boundary-aware {aware9:.3f} m "
        f"({100 * (1 - aware9 / plain9):+.0f}% change)"
    )


if __name__ == "__main__":
    main()
