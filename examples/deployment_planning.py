#!/usr/bin/env python
"""Plan a VIRE deployment: choose grid spacing, density and threshold.

A downstream user's workflow, built on the sweep utilities: given a
target environment, evaluate (a) how far apart the real reference tags
can be placed, (b) how many virtual tags pay off (Fig. 7's question),
and (c) the fixed-threshold sweet spot (Fig. 8's question) — then print
a recommended configuration.

Run:  python examples/deployment_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import fig7, fig8
from repro.experiments.sweeps import format_sweep, sweep_grid_spacing
from repro.rf import env3
from repro.utils.ascii import format_table

N_TRIALS = 8


def main() -> None:
    env = env3()
    print(f"planning a deployment for {env.name}: {env.description}\n")

    # (a) Reference grid spacing: denser real grids cost real tags.
    spacing = sweep_grid_spacing(
        environment=env, spacing_factors=(0.75, 1.0, 1.25, 1.5),
        n_trials=N_TRIALS,
    )
    print(format_sweep(spacing))

    # (b) Virtual density: free, but the benefit saturates (Fig. 7).
    density = fig7(
        total_tag_targets=(16, 100, 300, 600, 900, 1500),
        environment=env,
        n_trials=N_TRIALS,
    )
    rows = list(zip(density.total_tags.tolist(), density.mean_error.tolist()))
    print(
        "\n"
        + format_table(
            ["N² (total tags)", "mean error (m)"],
            rows,
            title="virtual tag density",
        )
    )
    # Knee: first density within 5% of the final plateau.
    plateau = density.mean_error[-1]
    knee_idx = int(np.argmax(density.mean_error <= plateau * 1.05))
    knee = int(density.total_tags[knee_idx])

    # (c) Threshold: the U-curve of Fig. 8.
    threshold = fig8(
        thresholds_db=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0),
        environment=env,
        n_trials=N_TRIALS,
    )
    rows = list(
        zip(threshold.thresholds_db.tolist(), threshold.mean_error.tolist())
    )
    print(
        "\n"
        + format_table(
            ["threshold (dB)", "mean error (m)"],
            rows,
            title="fixed elimination threshold",
        )
    )
    best_threshold = float(
        threshold.thresholds_db[int(np.argmin(threshold.mean_error))]
    )

    best_spacing = min(spacing.values, key=spacing.values.get)
    print("\nrecommended configuration:")
    print(f"  real grid spacing : {best_spacing}")
    print(f"  virtual tags (N²) : {knee} (benefit saturates beyond this)")
    print(f"  fixed threshold   : {best_threshold:g} dB "
          "(or adaptive mode, which needs no tuning)")


if __name__ == "__main__":
    main()
