#!/usr/bin/env python
"""Old vs new equipment: quantify §3.1's pitfalls.

The original 2003 LANDMARC gear beaconed every 7.5 s and reported only
8 discrete power levels; the improved RF Code gear (§3.2) beacons every
2 s and reports dBm directly. This example measures both differences:

* accuracy — LANDMARC on quantized vs direct readings, and
* latency — simulated time until the middleware can produce its first
  complete snapshot after the testbed powers on, per beacon interval.

Run:  python examples/equipment_generations.py
"""

from __future__ import annotations

from repro import (
    LandmarcEstimator,
    NEW_EQUIPMENT,
    ORIGINAL_EQUIPMENT,
    PowerLevelQuantizer,
    build_paper_deployment,
    paper_scenario,
    run_scenario,
)
from repro.exceptions import ReadingError
from repro.experiments.measurement import MeasurementSpec
from repro.rf import env2
from repro.utils.ascii import format_table

N_TRIALS = 10


def accuracy_comparison() -> None:
    rows = []
    for label, quantizer in (
        ("new: direct RSSI", None),
        ("old: 8 power levels", PowerLevelQuantizer()),
    ):
        scenario = paper_scenario("Env2", n_trials=N_TRIALS).with_(
            measurement=MeasurementSpec(n_reads=10, quantizer=quantizer)
        )
        result = run_scenario(scenario, [LandmarcEstimator()])
        summary = result.estimators[0].summary()
        rows.append([label, summary.mean, summary.p90, summary.maximum])
    print(
        format_table(
            ["equipment", "mean (m)", "p90 (m)", "max (m)"],
            rows,
            title="LANDMARC accuracy by equipment generation (Env2)",
        )
    )


def first_fix_latency(spec, label: str) -> float:
    """Simulated seconds until the middleware can answer its first query."""
    deployment = build_paper_deployment(
        env2(), tracking_tags={"asset": (1.5, 1.5)}, seed=0, tag_spec=spec
    )
    simulator = deployment.simulator
    step = 0.5
    while simulator.now < 120.0:
        simulator.run_for(step)
        try:
            simulator.reading_for("asset")
            return simulator.now
        except ReadingError:
            continue
    raise RuntimeError(f"{label}: no fix within 120 s")


def main() -> None:
    accuracy_comparison()
    print("\ntime to first complete location fix after power-on:")
    for spec, label in (
        (NEW_EQUIPMENT, "new (2 s beacons)"),
        (ORIGINAL_EQUIPMENT, "old (7.5 s beacons)"),
    ):
        latency = first_fix_latency(spec, label)
        print(f"  {label:22s} {latency:5.1f} s")


if __name__ == "__main__":
    main()
