"""Tests for the interpolation cache: accounting, LRU, bitwise identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro import VIREConfig, VIREEstimator
from repro.core.estimator import LatticeCache
from repro.core.interpolation import BilinearInterpolator
from repro.core.virtual_grid import VirtualGrid
from repro.exceptions import ConfigurationError
from repro.service import InterpolationCache

from .conftest import make_reading


@pytest.fixture
def vgrid(grid) -> VirtualGrid:
    return VirtualGrid(grid, 5)


def lattice(grid, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-70.0, -40.0, size=(grid.rows, grid.cols))


class TestAccounting:
    def test_miss_then_hit(self, grid, vgrid):
        cache = InterpolationCache()
        interp = BilinearInterpolator()
        lat = lattice(grid)
        first = cache.get_or_compute(lat, vgrid, interp)
        second = cache.get_or_compute(lat.copy(), vgrid, interp)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.lookups == 2
        assert cache.hit_rate == 0.5
        np.testing.assert_array_equal(first, second)

    def test_distinct_lattices_miss(self, grid, vgrid):
        cache = InterpolationCache()
        interp = BilinearInterpolator()
        cache.get_or_compute(lattice(grid, 0), vgrid, interp)
        cache.get_or_compute(lattice(grid, 1), vgrid, interp)
        assert cache.misses == 2
        assert cache.hits == 0

    def test_hit_is_bitwise_identical_to_recomputation(self, grid, vgrid):
        cache = InterpolationCache(quantization_db=0.0)
        interp = BilinearInterpolator()
        lat = lattice(grid)
        direct = interp.interpolate(lat, vgrid)
        cache.get_or_compute(lat, vgrid, interp)  # populate
        cached = cache.get_or_compute(lat, vgrid, interp)  # hit
        assert np.array_equal(cached, direct)
        assert cached.tobytes() == direct.tobytes()

    def test_result_is_readonly(self, grid, vgrid):
        cache = InterpolationCache()
        out = cache.get_or_compute(lattice(grid), vgrid, BilinearInterpolator())
        with pytest.raises(ValueError):
            out[0, 0] = 0.0

    def test_stats_snapshot(self, grid, vgrid):
        cache = InterpolationCache()
        cache.get_or_compute(lattice(grid), vgrid, BilinearInterpolator())
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_empty_hit_rate_zero(self):
        assert InterpolationCache().hit_rate == 0.0


class TestLRUEviction:
    def test_capacity_enforced_lru(self, grid, vgrid):
        cache = InterpolationCache(max_entries=2)
        interp = BilinearInterpolator()
        a, b, c = (lattice(grid, s) for s in (1, 2, 3))
        cache.get_or_compute(a, vgrid, interp)
        cache.get_or_compute(b, vgrid, interp)
        cache.get_or_compute(a, vgrid, interp)  # refresh a
        cache.get_or_compute(c, vgrid, interp)  # evicts b (LRU)
        assert cache.evictions == 1
        assert len(cache) == 2
        cache.get_or_compute(a, vgrid, interp)
        assert cache.hits == 2  # a still resident
        cache.get_or_compute(b, vgrid, interp)
        assert cache.misses == 4  # b was evicted

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            InterpolationCache(max_entries=0)
        with pytest.raises(ConfigurationError):
            InterpolationCache(quantization_db=-0.1)


class TestQuantizedKeys:
    def test_nearby_lattices_share_an_entry(self, grid, vgrid):
        cache = InterpolationCache(quantization_db=0.5)
        interp = BilinearInterpolator()
        lat = lattice(grid)
        cache.get_or_compute(lat, vgrid, interp)
        cache.get_or_compute(lat + 0.01, vgrid, interp)
        assert cache.hits == 1  # collapsed onto the same quantum

    def test_far_lattices_do_not_collide(self, grid, vgrid):
        cache = InterpolationCache(quantization_db=0.5)
        interp = BilinearInterpolator()
        lat = lattice(grid)
        cache.get_or_compute(lat, vgrid, interp)
        cache.get_or_compute(lat + 5.0, vgrid, interp)
        assert cache.hits == 0


class TestKeyScoping:
    def test_different_virtual_grids_do_not_collide(self, grid):
        cache = InterpolationCache()
        interp = BilinearInterpolator()
        lat = lattice(grid)
        r1 = cache.get_or_compute(lat, VirtualGrid(grid, 3), interp)
        r2 = cache.get_or_compute(lat, VirtualGrid(grid, 5), interp)
        assert cache.misses == 2
        assert r1.shape != r2.shape

    def test_different_interpolators_do_not_collide(self, grid, vgrid):
        from repro.core.interpolation import SplineInterpolator

        cache = InterpolationCache()
        lat = lattice(grid)
        cache.get_or_compute(lat, vgrid, BilinearInterpolator())
        cache.get_or_compute(lat, vgrid, SplineInterpolator())
        assert cache.misses == 2


class TestEstimatorInjection:
    def test_satisfies_core_protocol(self):
        assert isinstance(InterpolationCache(), LatticeCache)

    def test_estimates_bitwise_identical_with_and_without_cache(
        self, grid, clean_sampler
    ):
        config = VIREConfig(subdivisions=5)
        plain = VIREEstimator(grid, config)
        cache = InterpolationCache()
        cached = VIREEstimator(grid, config, interpolation_cache=cache)
        readings = [
            clean_sampler.reading_for((x, y))
            for x, y in [(0.4, 0.6), (1.3, 1.7), (2.6, 2.2)]
        ]
        # Repeat the stream so the cached estimator serves from cache.
        for reading in readings * 3:
            a = plain.estimate(reading)
            b = cached.estimate(reading)
            assert a.position == b.position  # exact float equality
        assert cache.hits > 0

    def test_cache_shared_across_estimators(self, grid, clean_reading):
        cache = InterpolationCache()
        config = VIREConfig(subdivisions=5)
        e1 = VIREEstimator(grid, config, interpolation_cache=cache)
        e2 = VIREEstimator(grid, config, interpolation_cache=cache)
        e1.estimate(clean_reading)
        misses_after_first = cache.misses
        e2.estimate(clean_reading)
        assert cache.misses == misses_after_first  # all hits on the second
