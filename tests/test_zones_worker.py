"""Tests for repro.zones.worker: the safety rail, checkpoints, metrics."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    SimulationError,
)
from repro.experiments.scenarios import paper_scenario
from repro.faults.crash import CrashPoint, SimulatedCrash
from repro.faults.plan import chaos_preset
from repro.service.pipeline import ServiceConfig
from repro.service.session import LocalizationService
from repro.zones import (
    ZoneWorker,
    scaled_site_plan,
    single_zone_plan,
    slice_fault_plan,
)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _config(**kw) -> ServiceConfig:
    kw.setdefault("query_interval_s", 1.0)
    return ServiceConfig(**kw)


class TestSafetyRail:
    """A single-zone worker is bitwise identical to the unzoned service."""

    def test_single_zone_witness_matches_the_service(self):
        scenario = paper_scenario("Env1", n_trials=1, base_seed=3)
        config = _config()
        baseline = LocalizationService(config).run(scenario, 8.0)
        plan = single_zone_plan(scenario)
        zoned = ZoneWorker(plan.zones[0], config).run(8.0)
        assert _witness(zoned) == _witness(baseline)

    def test_safety_rail_holds_under_a_fault_plan(self):
        scenario = paper_scenario("Env1", n_trials=1, base_seed=3)
        config = _config()
        faults = chaos_preset("moderate", seed=5)
        baseline = LocalizationService(config).run(
            scenario, 8.0, fault_plan=faults
        )
        plan = single_zone_plan(scenario)
        zoned = ZoneWorker(
            plan.zones[0],
            config,
            fault_plan=slice_fault_plan(faults, "z0"),
        ).run(8.0)
        assert _witness(zoned) == _witness(baseline)


class TestZoneMetrics:
    def test_worker_metrics_carry_the_zone_namespace(self):
        plan = scaled_site_plan("Env1", 2, seed=0)
        worker = ZoneWorker(plan.zone("z0"), _config())
        names = [m.name for m in worker.metrics]
        assert names
        assert all(n.startswith("repro_zone_z0_") for n in names)

    def test_two_zones_render_without_name_collisions(self):
        plan = scaled_site_plan("Env1", 2, seed=0)
        w0 = ZoneWorker(plan.zone("z0"), _config())
        w1 = ZoneWorker(plan.zone("z1"), _config())
        names0 = {m.name for m in w0.metrics}
        names1 = {m.name for m in w1.metrics}
        assert not names0 & names1
        merged = w0.metrics.render_prometheus() + "\n" + \
            w1.metrics.render_prometheus()
        assert "repro_zone_z0_service_requests_total" in merged
        assert "repro_zone_z1_service_requests_total" in merged


class TestZoneCheckpoints:
    def test_resuming_another_zones_checkpoint_fails_loudly(self, tmp_path):
        plan = scaled_site_plan("Env1", 2, seed=0)
        path = tmp_path / "z0.ckpt"
        ZoneWorker(
            plan.zone("z0"), _config(), checkpoint_path=path
        ).run(4.0)
        thief = ZoneWorker(
            plan.zone("z1"), _config(), checkpoint_path=path, resume=True
        )
        with pytest.raises(CheckpointError, match="zone"):
            thief.run(4.0)

    @pytest.mark.slow
    def test_crash_and_resume_witness_matches_uninterrupted(self, tmp_path):
        plan = scaled_site_plan("Env1", 1, seed=0)
        config = _config()
        uninterrupted = ZoneWorker(plan.zone("z0"), config).run(8.0)

        path = tmp_path / "z0.ckpt"
        with pytest.raises(SimulatedCrash):
            ZoneWorker(
                plan.zone("z0"), config,
                checkpoint_path=path, crash_point=CrashPoint(4.0),
            ).run(8.0)
        resumed = ZoneWorker(
            plan.zone("z0"), config, checkpoint_path=path, resume=True
        ).run(8.0)
        assert _witness(resumed) == _witness(uninterrupted)
        assert resumed.summary["resumed"] == 1.0


class TestWorkerMisuse:
    def test_step_before_start_is_an_error(self):
        plan = scaled_site_plan("Env1", 1, seed=0)
        worker = ZoneWorker(plan.zone("z0"), _config())
        with pytest.raises(SimulationError, match="not started"):
            worker.step()

    def test_resume_requires_a_checkpoint_path(self):
        plan = scaled_site_plan("Env1", 1, seed=0)
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            ZoneWorker(plan.zone("z0"), _config(), resume=True)

    def test_roaming_labels_may_not_shadow_static_tags(self):
        plan = scaled_site_plan("Env1", 1, seed=0)
        spec = plan.zone("z0")
        label = next(iter(spec.tracking_tags))
        with pytest.raises(ConfigurationError, match="collide"):
            ZoneWorker(
                spec, _config(), roaming_tags={str(label): (1.0, 1.0)}
            )

    def test_activating_an_unhosted_tag_is_an_error(self):
        plan = scaled_site_plan("Env1", 1, seed=0)
        worker = ZoneWorker(plan.zone("z0"), _config())
        with pytest.raises(ConfigurationError, match="hosts no tag"):
            worker.activate_tag("ghost")
