"""Self-healing calibration: residual statistics, trust machine, corrector.

The contracts under test (docs/CALIBRATION.md):

* every residual helper is NaN-safe by construction — masked frames,
  quorum-trimmed snapshots and zero-reference windows never warn and
  never produce garbage;
* the quarantine state machine is the CircuitBreaker mechanics applied
  to reference tags — votes, probation, readmit, re-quarantine;
* the corrector is answer-neutral under zero drift (*bitwise*, via the
  deadband and the return-the-same-object fast path) and converges to
  injected bias under synthetic drift;
* its state is a pure function of the record stream: checkpoint
  crash+resume with the corrector enabled stays byte-identical.
"""

from __future__ import annotations

import json
import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    CalibrationPolicy,
    DriftCorrector,
    ResidualWindow,
    TrustState,
    decompose_residuals,
    nan_mad,
    nan_median,
)
from repro.calibration.corrector import TagTrust
from repro.exceptions import CheckpointError, ConfigurationError
from repro.faults import CalibrationDriftFault, FaultPlan
from repro.types import TrackingReading

from .test_service_recovery import (
    SessionService,
    mid_session_time,
    service_config,
    witness,
)
from .test_service_recovery import StubScenario as RecoveryScenario


# ---------------------------------------------------------------------------
# NaN-safe robust statistics
# ---------------------------------------------------------------------------


class TestNanStats:
    def test_median_and_mad_of_finite_values(self):
        assert nan_median([1.0, 2.0, 9.0]) == 2.0
        assert nan_mad([1.0, 2.0, 9.0]) == 1.0

    def test_nan_entries_are_ignored(self):
        assert nan_median([np.nan, 4.0, np.nan, 6.0]) == 5.0
        assert nan_mad([np.nan, 4.0, 6.0]) == 1.0

    def test_all_nan_returns_nan_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(nan_median([np.nan, np.nan]))
            assert math.isnan(nan_mad(np.full((3, 3), np.nan)))

    def test_empty_returns_nan_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert math.isnan(nan_median([]))
            assert math.isnan(nan_mad([]))


class TestResidualWindow:
    def test_expires_entries_older_than_window(self):
        win = ResidualWindow(window_s=2.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            win.push(t, np.full((2, 3), t))
        assert len(win) == 3  # t=0 fell out at t=3
        stacked = win.stacked()
        assert stacked.shape == (3, 2, 3)
        assert stacked[0, 0, 0] == 1.0

    def test_empty_window_stacks_to_empty(self):
        win = ResidualWindow(window_s=5.0)
        assert win.stacked().shape == (0, 0, 0)

    def test_clear(self):
        win = ResidualWindow(window_s=5.0)
        win.push(0.0, np.zeros((1, 1)))
        win.clear()
        assert len(win) == 0


class TestDecompose:
    def test_reader_row_bias_is_recovered(self):
        resid = np.zeros((4, 2, 3))
        resid[:, 1, :] = 5.0  # reader 1 drifted by +5 dB
        bias, scores, _scale = decompose_residuals(resid)
        assert bias[0] == 0.0 and bias[1] == 5.0
        np.testing.assert_allclose(scores, 0.0)

    def test_tag_column_score_survives_bias_removal(self):
        resid = np.zeros((4, 2, 3))
        resid[:, :, 2] = -8.0  # tag 2 decayed
        resid[:, 0, :] += 3.0  # reader 0 drifted
        bias, scores, _scale = decompose_residuals(resid)
        assert bias[0] == 3.0
        assert scores[2] == -8.0
        assert scores[0] == 0.0

    def test_untrusted_columns_do_not_feed_reader_bias(self):
        resid = np.zeros((3, 2, 2))
        resid[:, :, 1] = 40.0  # one rotten tag
        trusted = np.array([True, False])
        bias, scores, _ = decompose_residuals(resid, trusted_columns=trusted)
        assert bias[0] == 0.0 and bias[1] == 0.0  # rot never leaks into bias
        assert scores[1] == 40.0  # but the rotten column is still scored

    def test_all_nan_column_scores_nan_without_warning(self):
        resid = np.zeros((3, 2, 2))
        resid[:, :, 1] = np.nan  # dead tag, stale series
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _bias, scores, _ = decompose_residuals(resid)
        assert math.isnan(scores[1])

    def test_zero_reference_window(self):
        bias, scores, scale = decompose_residuals(np.zeros((3, 2, 0)))
        assert bias.shape == (2,) and np.all(np.isnan(bias))
        assert scores.shape == (0,)
        assert math.isnan(scale)

    def test_empty_window(self):
        bias, scores, scale = decompose_residuals(np.empty((0, 0, 0)))
        assert bias.shape == (0,) and scores.shape == (0,)
        assert math.isnan(scale)

    def test_scale_needs_two_finite_scores(self):
        resid = np.zeros((3, 2, 2))
        resid[:, :, 1] = np.nan
        _, _, scale = decompose_residuals(resid)
        assert math.isnan(scale)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            decompose_residuals(np.zeros((3, 2)))


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_s": 0.0},
            {"min_samples": 0},
            {"bias_deadband_db": -1.0},
            {"max_correction_db": 0.0},
            {"anomaly_threshold_db": 0.0},
            {"anomaly_scale_gate": -0.5},
            {"quarantine_votes": 0},
            {"probation_s": 0.0},
            {"max_quarantined_fraction": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            CalibrationPolicy(**kwargs)

    def test_with_produces_modified_copy(self):
        base = CalibrationPolicy()
        tweaked = base.with_(window_s=9.0)
        assert tweaked.window_s == 9.0
        assert base.window_s == 6.0


# ---------------------------------------------------------------------------
# Trust state machine
# ---------------------------------------------------------------------------


def make_trust(**changes) -> TagTrust:
    policy = CalibrationPolicy(quarantine_votes=3, probation_s=5.0)
    return TagTrust(policy.with_(**changes) if changes else policy)


class TestTagTrust:
    def test_votes_accumulate_to_quarantine(self):
        trust = make_trust()
        assert trust.record_anomaly(1.0, allow_quarantine=True) is None
        assert trust.record_anomaly(2.0, allow_quarantine=True) is None
        assert trust.record_anomaly(3.0, allow_quarantine=True) == "quarantine"
        assert trust.state == TrustState.QUARANTINED
        assert trust.excised

    def test_clean_tick_resets_votes(self):
        trust = make_trust()
        trust.record_anomaly(1.0, allow_quarantine=True)
        trust.record_anomaly(2.0, allow_quarantine=True)
        trust.record_normal()
        trust.record_anomaly(3.0, allow_quarantine=True)
        assert trust.state == TrustState.TRUSTED

    def test_probation_then_readmit(self):
        trust = make_trust(quarantine_votes=1)
        trust.record_anomaly(1.0, allow_quarantine=True)
        assert not trust.due_for_probation(5.9)
        assert trust.due_for_probation(6.0)
        assert trust.begin_probation() == "probation"
        assert trust.excised  # probation still excised
        assert trust.record_normal() == "readmit"
        assert trust.state == TrustState.TRUSTED
        assert trust.quarantined_at_s is None

    def test_failed_probation_requarantines_and_restarts_timer(self):
        trust = make_trust(quarantine_votes=1)
        trust.record_anomaly(1.0, allow_quarantine=True)
        trust.begin_probation()
        assert trust.record_anomaly(7.0, allow_quarantine=False) == "quarantine"
        assert trust.quarantined_at_s == 7.0

    def test_full_cap_saturates_votes_without_quarantine(self):
        trust = make_trust()
        for t in range(10):
            assert trust.record_anomaly(float(t), allow_quarantine=False) is None
        assert trust.state == TrustState.TRUSTED
        # First tick with a free slot flips it.
        assert trust.record_anomaly(11.0, allow_quarantine=True) == "quarantine"


# ---------------------------------------------------------------------------
# DriftCorrector unit behaviour
# ---------------------------------------------------------------------------

READERS = ("r0", "r1")
REFS = ("a", "b", "c", "d")


def make_corrector(**changes) -> DriftCorrector:
    policy = CalibrationPolicy(
        window_s=4.0, min_samples=2, quarantine_votes=2, probation_s=3.0,
        max_quarantined_fraction=0.25,
    )
    return DriftCorrector(
        READERS, REFS, policy.with_(**changes) if changes else policy
    )


def baseline() -> np.ndarray:
    return np.full((len(READERS), len(REFS)), -50.0)


def feed(corrector, matrices_and_times):
    for now_s, matrix in matrices_and_times:
        corrector.observe(matrix, now_s)


def make_reading(ref=None, trk=None, reader_ids=READERS, masked=False):
    n = len(REFS)
    k = len(reader_ids)
    return TrackingReading(
        reference_rssi=np.full((k, n), -50.0) if ref is None else ref,
        tracking_rssi=np.full(k, -55.0) if trk is None else trk,
        reference_positions=np.zeros((n, 2)),
        reader_ids=tuple(reader_ids),
        tag_id="tag-x",
        timestamp=1.0,
        masked=masked,
    )


class TestDriftCorrector:
    def test_arm_validates_shape(self):
        corrector = make_corrector()
        with pytest.raises(ConfigurationError):
            corrector.arm(np.zeros((3, 3)), 0.0)
        assert not corrector.armed

    def test_unarmed_is_inert(self):
        corrector = make_corrector()
        corrector.observe(baseline(), 1.0)
        reading = make_reading()
        assert corrector.correct_reading(reading) is reading

    def test_converges_to_injected_row_bias(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        drifted = baseline()
        drifted[0, :] += 6.0  # r0 reads 6 dB hot
        feed(corrector, [(1.0, drifted), (2.0, drifted), (3.0, drifted)])
        assert corrector.bias_estimates() == {"r0": 6.0, "r1": 0.0}

    def test_deadband_snaps_to_exact_zero_and_reading_is_same_object(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        noisy = baseline() + 0.4  # below the default deadband
        feed(corrector, [(1.0, noisy), (2.0, noisy), (3.0, noisy)])
        assert corrector.bias_estimates() == {"r0": 0.0, "r1": 0.0}
        assert corrector.raw_bias_estimates()["r0"] == pytest.approx(0.4)
        reading = make_reading()
        assert corrector.correct_reading(reading) is reading

    def test_correction_is_clamped(self):
        corrector = make_corrector(max_correction_db=5.0)
        corrector.arm(baseline(), 0.0)
        runaway = baseline()
        runaway[1, :] -= 40.0
        feed(corrector, [(1.0, runaway), (2.0, runaway)])
        assert corrector.bias_estimates()["r1"] == -5.0

    def test_correct_reading_subtracts_bias_from_whole_row(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        drifted = baseline()
        drifted[0, :] += 6.0
        feed(corrector, [(1.0, drifted), (2.0, drifted)])
        out = corrector.correct_reading(make_reading())
        np.testing.assert_allclose(out.reference_rssi[0], -56.0)
        np.testing.assert_allclose(out.tracking_rssi[0], -61.0)
        np.testing.assert_allclose(out.reference_rssi[1], -50.0)
        assert not out.masked  # bias correction alone never masks

    def test_correct_reading_handles_subset_readers(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        drifted = baseline()
        drifted[1, :] += 8.0
        feed(corrector, [(1.0, drifted), (2.0, drifted)])
        # Partial frame: only r1 survived quorum.
        reading = make_reading(
            ref=np.full((1, len(REFS)), -42.0),
            trk=np.array([-47.0]),
            reader_ids=("r1",),
            masked=True,
        )
        out = corrector.correct_reading(reading)
        np.testing.assert_allclose(out.reference_rssi[0], -50.0)
        np.testing.assert_allclose(out.tracking_rssi[0], -55.0)

    def test_anomalous_column_is_quarantined_and_excised(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        rotten = baseline()
        rotten[:, 2] -= 30.0  # tag "c" decays at both readers
        # Tick 1 fills the window below min_samples; ticks 2 and 3 are
        # the two anomalous votes.
        feed(corrector, [(1.0, rotten), (2.0, rotten), (3.0, rotten)])
        assert corrector.excised_tags() == ("c",)
        out = corrector.correct_reading(make_reading())
        assert np.all(np.isnan(out.reference_rssi[:, 2]))
        assert out.masked
        kinds = [e["event"] for e in corrector.events]
        assert kinds == ["quarantine"]
        event = corrector.events[0]
        assert event["tag"] == "c" and event["t"] == 3.0
        json.dumps(corrector.events)  # witness-ready

    def test_all_nan_column_counts_as_anomalous(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        silent = baseline()
        silent[:, 1] = np.nan  # tag "b" went dark
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            feed(corrector, [(1.0, silent), (2.0, silent), (3.0, silent)])
        assert corrector.excised_tags() == ("b",)

    def test_quarantine_cap_is_enforced(self):
        # 1/8 of 8 tags = 1 excision slot. (With only 4 tags two rotten
        # columns swamp the field median and the adaptive scale gate
        # correctly refuses to quarantine anything — tested below.)
        refs = tuple("abcdefgh")
        corrector = DriftCorrector(
            READERS,
            refs,
            CalibrationPolicy(
                window_s=4.0, min_samples=2, quarantine_votes=2,
                probation_s=3.0, max_quarantined_fraction=0.125,
            ),
        )
        corrector.arm(np.full((len(READERS), len(refs)), -50.0), 0.0)
        rotten = np.full((len(READERS), len(refs)), -50.0)
        rotten[:, 2] -= 30.0
        rotten[:, 3] -= 25.0  # two tags rot, only one slot
        feed(corrector, [(1.0, rotten), (2.0, rotten), (3.0, rotten)])
        assert corrector.excised_tags() == ("c",)

    def test_field_wide_rot_trips_the_scale_gate_not_quarantine(self):
        # Half the lattice rotting at once is indistinguishable from
        # reader drift; the MAD-adaptive threshold must hold fire
        # instead of amputating half the field.
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        rotten = baseline()
        rotten[:, 2] -= 30.0
        rotten[:, 3] -= 25.0
        feed(corrector, [(1.0, rotten), (2.0, rotten), (3.0, rotten)])
        assert corrector.excised_tags() == ()

    def test_quarantine_probation_readmit_cycle(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        rotten = baseline()
        rotten[:, 0] -= 20.0
        feed(corrector, [(1.0, rotten), (2.0, rotten), (3.0, rotten)])
        assert corrector.excised_tags() == ("a",)
        # Tag heals; probation is due 3 s after the t=3 quarantine, and
        # by t=6 the rotten ticks have mostly expired from the window.
        healed = baseline()
        feed(corrector, [(4.0, healed), (5.0, healed), (6.0, healed)])
        assert corrector.excised_tags() == ()
        kinds = [e["event"] for e in corrector.events]
        assert kinds == ["quarantine", "probation", "readmit"]

    def test_checkpoint_state_is_json_native_and_tracks_trust(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        rotten = baseline()
        rotten[:, 2] -= 30.0
        feed(corrector, [(1.0, rotten), (2.0, rotten), (3.0, rotten)])
        state = corrector.checkpoint_state()
        assert json.loads(json.dumps(state)) == state
        assert state["armed"] is True
        assert state["trust"]["c"]["state"] == TrustState.QUARANTINED
        assert state["events"] == 1

    def test_summary_exposes_per_reader_bias(self):
        corrector = make_corrector()
        corrector.arm(baseline(), 0.0)
        drifted = baseline()
        drifted[0, :] += 6.0
        feed(corrector, [(1.0, drifted), (2.0, drifted)])
        summary = corrector.summary()
        assert summary["calibration_bias_r0_db"] == 6.0
        assert summary["calibration_bias_r1_db"] == 0.0
        assert summary["calibration_quarantined"] == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftCorrector(("r0", "r0"), REFS)
        with pytest.raises(ConfigurationError):
            DriftCorrector(READERS, ("a", "a"))


# ---------------------------------------------------------------------------
# End-to-end: sessions, neutrality, checkpoint resume
# ---------------------------------------------------------------------------


def drift_plan(seed: int = 0) -> FaultPlan:
    return FaultPlan(
        [
            CalibrationDriftFault(
                "reader-0", drift_db_per_s=2.0, start_s=2.0, max_drift_db=8.0
            )
        ],
        seed=seed,
    )


def calibrated_config(**changes):
    return service_config(calibration=CalibrationPolicy(), **changes)


class TestSessionIntegration:
    def test_corrector_tracks_injected_drift_in_session(self):
        report = SessionService(7, calibrated_config()).run(
            RecoveryScenario(), 8.0, fault_plan=drift_plan()
        )
        bias = report.summary["calibration_bias_reader-0_db"]
        assert bias > 2.0  # ramp is fast; estimate must clearly engage
        assert report.summary["calibration_bias_reader-3_db"] == 0.0

    def test_witness_gains_events_key_only_when_events_happened(self):
        clean = SessionService(7, calibrated_config()).run(
            RecoveryScenario(), 6.0
        )
        assert "calibration_events" not in clean.witness_document()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_zero_drift_corrector_is_bitwise_answer_neutral(self, seed):
        off = SessionService(seed).run(RecoveryScenario(), 6.0)
        on = SessionService(seed, calibrated_config()).run(
            RecoveryScenario(), 6.0
        )
        assert witness(on) == witness(off)

    def test_crash_resume_with_calibration_is_byte_identical(self, tmp_path):
        path = tmp_path / "calib.ckpt"
        config = calibrated_config()
        baseline_report = SessionService(11, config).run(
            RecoveryScenario(), 8.0, fault_plan=drift_plan()
        )
        with pytest.raises(BaseException):
            SessionService(11, config).run(
                RecoveryScenario(),
                8.0,
                fault_plan=drift_plan(),
                checkpoint_path=path,
                crash_point=__import__("repro.faults", fromlist=["CrashPoint"])
                .CrashPoint(at_s=mid_session_time(baseline_report)),
            )
        resumed = SessionService(11, config).run(
            RecoveryScenario(),
            8.0,
            fault_plan=drift_plan(),
            checkpoint_path=path,
            resume=True,
        )
        assert witness(resumed) == witness(baseline_report)

    def test_checkpoint_header_marks_calibration(self, tmp_path):
        path = tmp_path / "calib.ckpt"
        SessionService(11, calibrated_config()).run(
            RecoveryScenario(), 4.0, checkpoint_path=path
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header.get("calibration") is True

    def test_resume_without_calibration_rejects_calibrated_checkpoint(
        self, tmp_path
    ):
        path = tmp_path / "calib.ckpt"
        SessionService(11, calibrated_config()).run(
            RecoveryScenario(), 4.0, checkpoint_path=path
        )
        with pytest.raises(CheckpointError):
            SessionService(11).run(
                RecoveryScenario(), 4.0, checkpoint_path=path, resume=True
            )
