"""Tests for the analysis layer: CDF comparison, paired bootstrap, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LandmarcEstimator,
    NearestReferenceEstimator,
    VIREConfig,
    VIREEstimator,
    paper_scenario,
    run_scenario,
)
from repro.analysis import (
    cdf_comparison,
    format_cdf_comparison,
    paired_bootstrap,
)
from repro.exceptions import ConfigurationError
from repro.experiments.measurement import MeasurementSpec
from repro.experiments.scenarios import TestbedScenario

from .conftest import make_clean_environment


@pytest.fixture(scope="module")
def env3_result():
    scenario = paper_scenario("Env3", n_trials=8, base_seed=0)
    vire = VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900))
    return run_scenario(scenario, [LandmarcEstimator(), vire])


class TestCdf:
    def test_fractions_monotone_in_level(self, env3_result):
        comp = cdf_comparison(env3_result)
        for name, curve in comp.items():
            levels = sorted(curve)
            vals = [curve[l] for l in levels]
            assert vals == sorted(vals), name

    def test_fractions_bounded(self, env3_result):
        comp = cdf_comparison(env3_result)
        for curve in comp.values():
            assert all(0.0 <= v <= 1.0 for v in curve.values())

    def test_vire_dominates_landmarc(self, env3_result):
        comp = cdf_comparison(env3_result)
        for level in comp["VIRE"]:
            assert comp["VIRE"][level] >= comp["LANDMARC"][level] - 0.05

    def test_invalid_levels_rejected(self, env3_result):
        with pytest.raises(ConfigurationError):
            cdf_comparison(env3_result, levels_m=(0.0, 1.0))

    def test_formatting(self, env3_result):
        out = format_cdf_comparison(cdf_comparison(env3_result))
        assert "LANDMARC" in out and "VIRE" in out
        assert "%" in out


class TestPairedBootstrap:
    def test_vire_significant_in_env3(self, env3_result):
        comp = paired_bootstrap(env3_result, "LANDMARC", "VIRE", seed=1)
        assert comp.mean_improvement_m > 0
        assert comp.significant
        assert comp.n_pairs == 8 * 9

    def test_ci_ordering(self, env3_result):
        comp = paired_bootstrap(env3_result, "LANDMARC", "VIRE")
        assert comp.ci_low_m <= comp.mean_improvement_m <= comp.ci_high_m

    def test_self_comparison_not_significant(self, env3_result):
        comp = paired_bootstrap(env3_result, "LANDMARC", "LANDMARC")
        assert comp.mean_improvement_m == 0.0
        assert not comp.significant

    def test_deterministic_given_seed(self, env3_result):
        a = paired_bootstrap(env3_result, "LANDMARC", "VIRE", seed=5)
        b = paired_bootstrap(env3_result, "LANDMARC", "VIRE", seed=5)
        assert a == b

    def test_unknown_estimator_rejected(self, env3_result):
        with pytest.raises(ConfigurationError):
            paired_bootstrap(env3_result, "LANDMARC", "nope")

    def test_too_few_resamples_rejected(self, env3_result):
        with pytest.raises(ConfigurationError):
            paired_bootstrap(env3_result, "LANDMARC", "VIRE", n_resamples=10)

    def test_str_readable(self, env3_result):
        text = str(paired_bootstrap(env3_result, "LANDMARC", "VIRE"))
        assert "improves on LANDMARC" in text
        assert "95% CI" in text

    def test_detects_worse_estimator(self):
        """The nearest-reference baseline is clearly worse than VIRE in a
        clean channel; the bootstrap must NOT call it an improvement."""
        scenario = TestbedScenario(
            environment=make_clean_environment(),
            tracking_tags={1: (1.4, 1.6), 2: (2.2, 0.8)},
            n_trials=6,
            measurement=MeasurementSpec(n_reads=2),
        )
        vire = VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900))
        result = run_scenario(
            scenario, [vire, NearestReferenceEstimator()]
        )
        comp = paired_bootstrap(result, "VIRE", "Nearest")
        assert comp.mean_improvement_m < 0
        assert not comp.significant
