"""Shared fixtures: the paper testbed, clean/noisy channels, readings."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EnvironmentSpec,
    LogDistancePathLoss,
    MultipathSpec,
    ReferenceGrid,
    ShadowingSpec,
    TrackingReading,
    corner_reader_positions,
    paper_testbed_grid,
)
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.geometry.rooms import rectangular_room
from repro.rf.fading import RicianFading


@pytest.fixture
def grid() -> ReferenceGrid:
    """The paper's 4x4, 1 m reference grid."""
    return paper_testbed_grid()


@pytest.fixture
def readers(grid) -> np.ndarray:
    """Corner readers 1 m outside the grid (SW, SE, NW, NE)."""
    return corner_reader_positions(grid)


def make_clean_environment(**overrides) -> EnvironmentSpec:
    """An environment with no stochastic impairments at all.

    Pure log-distance propagation in a big open room: readings are exactly
    the deterministic path loss, which makes estimator behaviour checkable
    to numerical precision.
    """
    defaults = dict(
        name="clean",
        room=rectangular_room(
            30.0, 30.0, origin=(-12.0, -12.0), reflectivity=0.0,
            attenuation_db=0.0, name="clean-room",
        ),
        path_loss=LogDistancePathLoss(rssi_at_reference=-45.0, gamma=2.0),
        shadowing=ShadowingSpec(sigma_db=0.0, correlation_length_m=2.0),
        multipath=MultipathSpec(max_reflections=0),
        rician_k=1e6,  # negligible per-reading fading
        noise_sigma_db=0.0,
        reference_tag_offset_sigma_db=0.0,
        tracking_tag_offset_sigma_db=0.0,
    )
    defaults.update(overrides)
    return EnvironmentSpec(**defaults)


@pytest.fixture
def clean_environment() -> EnvironmentSpec:
    return make_clean_environment()


@pytest.fixture
def clean_sampler(clean_environment, grid) -> TrialSampler:
    """Deterministic sampler over the clean environment."""
    return TrialSampler(
        clean_environment,
        grid,
        seed=0,
        measurement=MeasurementSpec(n_reads=1),
    )


@pytest.fixture
def clean_reading(clean_sampler) -> TrackingReading:
    """One deterministic reading of a tag at (1.3, 1.7)."""
    return clean_sampler.reading_for((1.3, 1.7))


def make_reading(
    reference_rssi: np.ndarray,
    tracking_rssi: np.ndarray,
    grid: ReferenceGrid | None = None,
) -> TrackingReading:
    """Assemble a reading over the paper grid from raw RSSI arrays."""
    g = grid or paper_testbed_grid()
    return TrackingReading(
        reference_rssi=np.asarray(reference_rssi, dtype=np.float64),
        tracking_rssi=np.asarray(tracking_rssi, dtype=np.float64),
        reference_positions=g.tag_positions(),
    )


@pytest.fixture
def rician() -> RicianFading:
    return RicianFading(k_factor=6.0)
