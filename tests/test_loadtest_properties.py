"""Property tests of the load harness's determinism contract.

The claim: a :class:`LoadProfile` (seed included) is a *complete*
description of a load test. Two materializations of the same profile
must agree byte-for-byte — first the arrival schedule alone (cheap,
hammered across the whole profile space), then the full witness and
the regenerated ``repro report`` capacity summary (expensive, few
examples over a tiny profile).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.registry import build_capacity_report
from repro.core.config import VIREConfig
from repro.loadtest import LoadProfile, generate_schedule, run_load_test
from repro.service import ServiceConfig

profiles = st.builds(
    LoadProfile,
    name=st.sampled_from(["steady", "poisson", "burst", "prop"]),
    process=st.sampled_from(["uniform", "poisson", "burst"]),
    n_zones=st.integers(1, 4),
    duration_s=st.floats(1.0, 60.0, allow_nan=False),
    rate_per_s=st.floats(0.5, 50.0, allow_nan=False),
    burst_factor=st.floats(1.0, 10.0, allow_nan=False),
    burst_duty=st.floats(0.05, 1.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)


def schedule_bytes(profile: LoadProfile) -> bytes:
    doc = generate_schedule(profile).canonical_document()
    return json.dumps(doc, sort_keys=True).encode()


class TestScheduleDeterminism:
    @given(profile=profiles)
    @settings(max_examples=60, deadline=None)
    def test_same_profile_same_bytes(self, profile):
        assert schedule_bytes(profile) == schedule_bytes(profile)

    @given(profile=profiles)
    @settings(max_examples=40, deadline=None)
    def test_events_sorted_and_inside_the_horizon(self, profile):
        schedule = generate_schedule(profile)
        times = [t for t, _, _ in schedule.events]
        assert times == sorted(times)
        assert all(0.0 < t <= profile.duration_s for t in times)

    @given(profile=profiles, extra=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_added_zones_never_perturb_existing_streams(self, profile, extra):
        wider = profile.with_(n_zones=profile.n_zones + extra)
        narrow = generate_schedule(profile)
        wide = generate_schedule(wider)
        for zone_id in profile.zone_ids():
            assert wide.for_zone(zone_id) == narrow.for_zone(zone_id)

    @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_digest_is_a_function_of_the_seed(self, seed_a, seed_b):
        a = generate_schedule(LoadProfile(process="poisson", seed=seed_a))
        b = generate_schedule(LoadProfile(process="poisson", seed=seed_b))
        assert (a.digest() == b.digest()) == (seed_a == seed_b)


class TestEndToEndDeterminism:
    """The expensive half: run the real harness twice per example."""

    @given(
        seed=st.integers(0, 1_000_000),
        process=st.sampled_from(["uniform", "burst"]),
    )
    @settings(max_examples=4, deadline=None)
    def test_witness_and_capacity_report_are_byte_identical(
        self, seed, process
    ):
        profile = LoadProfile(
            name="e2e", process=process, duration_s=3.0,
            rate_per_s=3.0, seed=seed,
        )
        config = ServiceConfig(vire=VIREConfig(subdivisions=5))
        docs = []
        for _ in range(2):
            report = run_load_test(profile, config=config)
            point = report.witness_document()
            summary = build_capacity_report([point], meta={"seed": seed})
            docs.append(json.dumps(
                {"point": point, "report": summary}, sort_keys=True
            ))
        assert docs[0] == docs[1]
