"""Tests for the fault-injection subsystem (``repro.faults``).

Four layers of claims:

1. **Models** — each fault model transforms single records exactly as
   documented (windows, duty cycles, decay ramps, clamped drift, delay
   jitter), validates its parameters, and emits the right transitions.
2. **Plans** — plans are immutable, compile to fresh per-fault state,
   derive per-fault RNG streams that do not interfere, and the named
   chaos presets exist.
3. **Injector** — accounting (seen/dropped/modified/delayed), the
   delayed-record heap, the empty-plan fast path, and metrics mirroring.
4. **Determinism** — same plan + seed replayed over the same records
   yields identical outputs and an identical fault-event trail; an empty
   plan run through a full service session is bit-identical to no plan
   at all; a chaotic session replays exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    BurstLossFault,
    CalibrationDriftFault,
    DelayFault,
    FaultInjector,
    FaultPlan,
    ReaderOutageFault,
    TagDeathFault,
    chaos_preset,
)
from repro.hardware.readers import ReadingRecord
from repro.service.metrics import MetricsRegistry


def rec(
    reader: str = "reader-0",
    tag: str = "tag-a",
    t: float = 0.0,
    rssi: float = -50.0,
) -> ReadingRecord:
    return ReadingRecord(reader_id=reader, tag_id=tag, time_s=t, rssi_dbm=rssi)


class EmitLog:
    """Collects (kind, fields) pairs emitted by compiled faults."""

    def __init__(self):
        self.events: list[tuple[str, dict]] = []

    def __call__(self, kind: str, **fields) -> None:
        self.events.append((kind, fields))

    def kinds(self) -> list[str]:
        return [k for k, _ in self.events]


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------


class TestReaderOutageFault:
    def test_down_at_window_semantics(self):
        fault = ReaderOutageFault("reader-0", start_s=10.0, duration_s=5.0)
        assert not fault.down_at(9.999)
        assert fault.down_at(10.0)  # closed at the left
        assert fault.down_at(14.999)
        assert not fault.down_at(15.0)  # open at the right

    def test_permanent_outage(self):
        fault = ReaderOutageFault("reader-0", start_s=1.0, duration_s=math.inf)
        assert fault.down_at(1e9)

    def test_flapping_duty_cycle(self):
        fault = ReaderOutageFault(
            "reader-0", start_s=0.0, duration_s=100.0,
            flapping_period_s=10.0, flap_duty=0.3,
        )
        # First 30% of each period down, rest up.
        assert fault.down_at(0.0)
        assert fault.down_at(2.9)
        assert not fault.down_at(3.0)
        assert not fault.down_at(9.9)
        assert fault.down_at(12.0)  # second period

    def test_apply_drops_in_window_and_emits_edges(self):
        emit = EmitLog()
        fault = ReaderOutageFault("reader-0", start_s=5.0, duration_s=10.0)
        compiled = fault.compile(rng())
        assert compiled.apply(rec(t=1.0), 1.0, emit) == [(1.0, rec(t=1.0))]
        assert compiled.apply(rec(t=6.0), 6.0, emit) == []
        assert compiled.apply(rec(t=7.0), 7.0, emit) == []  # no duplicate event
        out = compiled.apply(rec(t=20.0), 20.0, emit)
        assert len(out) == 1 and out[0][0] == 20.0
        assert emit.kinds() == ["reader_outage_start", "reader_outage_end"]

    def test_other_readers_unaffected(self):
        emit = EmitLog()
        compiled = ReaderOutageFault(
            "reader-0", start_s=0.0, duration_s=math.inf
        ).compile(rng())
        record = rec(reader="reader-1", t=1.0)
        assert compiled.apply(record, 1.0, emit) == [(1.0, record)]
        assert emit.events == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(reader_id="", start_s=0.0, duration_s=1.0),
            dict(reader_id="r", start_s=-1.0, duration_s=1.0),
            dict(reader_id="r", start_s=0.0, duration_s=0.0),
            dict(reader_id="r", start_s=0.0, duration_s=1.0,
                 flapping_period_s=0.0),
            dict(reader_id="r", start_s=0.0, duration_s=1.0, flap_duty=1.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReaderOutageFault(**kwargs)


class TestBurstLossFault:
    def test_forced_bad_state_drops_everything(self):
        emit = EmitLog()
        compiled = BurstLossFault(
            p_enter_bad=1.0, p_exit_bad=0.0, loss_bad=1.0
        ).compile(rng())
        for t in (0.0, 1.0, 2.0):
            assert compiled.apply(rec(t=t), t, emit) == []
        assert emit.kinds() == ["burst_state_bad"]  # one transition only

    def test_good_state_without_loss_passes(self):
        emit = EmitLog()
        compiled = BurstLossFault(
            p_enter_bad=0.0, p_exit_bad=1.0, loss_good=0.0
        ).compile(rng())
        record = rec()
        assert compiled.apply(record, 0.0, emit) == [(0.0, record)]
        assert emit.events == []

    def test_recovers_via_exit_probability(self):
        emit = EmitLog()
        compiled = BurstLossFault(
            p_enter_bad=1.0, p_exit_bad=1.0, loss_bad=1.0, loss_good=0.0
        ).compile(rng())
        compiled.apply(rec(t=0.0), 0.0, emit)  # good -> bad, dropped
        out = compiled.apply(rec(t=1.0), 1.0, emit)  # bad -> good, passes
        assert len(out) == 1
        assert emit.kinds() == ["burst_state_bad", "burst_state_good"]

    def test_window_and_reader_filters_bypass_chain(self):
        emit = EmitLog()
        fault = BurstLossFault(
            reader_id="reader-0", p_enter_bad=1.0, loss_bad=1.0,
            start_s=10.0, duration_s=5.0,
        )
        compiled = fault.compile(rng())
        other = rec(reader="reader-9", t=12.0)
        assert compiled.apply(other, 12.0, emit) == [(12.0, other)]
        early = rec(t=1.0)
        assert compiled.apply(early, 1.0, emit) == [(1.0, early)]
        assert compiled.apply(rec(t=12.0), 12.0, emit) == []  # in window
        assert emit.kinds() == ["burst_state_bad"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstLossFault(p_enter_bad=1.5)
        with pytest.raises(ConfigurationError):
            BurstLossFault(duration_s=0.0)


class TestTagDeathFault:
    def test_exact_death_time(self):
        emit = EmitLog()
        compiled = TagDeathFault("ref-3", death_time_s=10.0).compile(rng())
        alive = rec(tag="ref-3", t=9.0)
        assert compiled.apply(alive, 9.0, emit) == [(9.0, alive)]
        assert compiled.apply(rec(tag="ref-3", t=10.0), 10.0, emit) == []
        assert compiled.apply(rec(tag="ref-3", t=11.0), 11.0, emit) == []
        assert emit.events == [
            ("tag_death", {"tag": "ref-3", "death_t": 10.0})
        ]

    def test_decay_ramp_sags_rssi(self):
        compiled = TagDeathFault(
            "tag-a", death_time_s=10.0, decay_db_per_s=2.0,
            decay_duration_s=4.0,
        ).compile(rng())
        emit = EmitLog()
        # Before the ramp: untouched (same object).
        early = rec(t=5.0)
        assert compiled.apply(early, 5.0, emit)[0][1] is early
        # Inside the ramp: sag = 2 dB/s * (8 - 6) s = 4 dB.
        [(release, sagged)] = compiled.apply(rec(t=8.0, rssi=-50.0), 8.0, emit)
        assert release == 8.0
        assert sagged.rssi_dbm == pytest.approx(-54.0)
        assert sagged.time_s == 8.0  # measurement timestamp preserved

    def test_random_death_drawn_from_window_reproducibly(self):
        fault = TagDeathFault("tag-a", death_window_s=(3.0, 7.0))
        a = fault.compile(rng(42))
        b = fault.compile(rng(42))
        assert 3.0 <= a.death_time_s <= 7.0
        assert a.death_time_s == b.death_time_s
        assert fault.compile(rng(43)).death_time_s != a.death_time_s

    def test_other_tags_unaffected(self):
        compiled = TagDeathFault("ref-3", death_time_s=0.0).compile(rng())
        record = rec(tag="tag-b", t=5.0)
        assert compiled.apply(record, 5.0, EmitLog()) == [(5.0, record)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TagDeathFault("")
        with pytest.raises(ConfigurationError):
            TagDeathFault("t", death_window_s=(5.0, 2.0))
        with pytest.raises(ConfigurationError):
            TagDeathFault("t", decay_db_per_s=-1.0)

    def test_recovery_restores_full_power_and_emits_once(self):
        compiled = TagDeathFault(
            "ref-3", death_time_s=10.0, decay_db_per_s=2.0,
            decay_duration_s=4.0, recovery_time_s=20.0,
        ).compile(rng())
        emit = EmitLog()
        assert compiled.apply(rec(tag="ref-3", t=12.0), 12.0, emit) == []
        # Battery swap: records pass again at full power (no sag).
        revived = rec(tag="ref-3", t=20.0, rssi=-50.0)
        [(release, out)] = compiled.apply(revived, 20.0, emit)
        assert release == 20.0 and out is revived
        later = rec(tag="ref-3", t=25.0, rssi=-48.0)
        assert compiled.apply(later, 25.0, emit) == [(25.0, later)]
        kinds = [k for k, _ in emit.events]
        assert kinds == ["tag_death", "tag_recovery"]
        assert emit.events[1][1] == {"tag": "ref-3", "recovery_t": 20.0}

    def test_recovery_must_follow_death(self):
        with pytest.raises(ConfigurationError):
            TagDeathFault("t", death_time_s=10.0, recovery_time_s=10.0)
        with pytest.raises(ConfigurationError):
            # Random draw: recovery must clear the whole window.
            TagDeathFault(
                "t", death_window_s=(5.0, 15.0), recovery_time_s=12.0
            )
        # Clearing the window is fine.
        TagDeathFault("t", death_window_s=(5.0, 15.0), recovery_time_s=16.0)


class TestCalibrationDriftFault:
    def test_bias_ramp_and_clamp(self):
        fault = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.5, start_s=10.0, max_drift_db=3.0
        )
        assert fault.bias_at(5.0) == 0.0
        assert fault.bias_at(10.0) == 0.0
        assert fault.bias_at(14.0) == pytest.approx(2.0)
        assert fault.bias_at(100.0) == 3.0  # clamped

    def test_negative_drift_clamps_symmetrically(self):
        fault = CalibrationDriftFault(
            "reader-1", drift_db_per_s=-1.0, max_drift_db=2.5
        )
        assert fault.bias_at(100.0) == -2.5

    def test_apply_adds_bias(self):
        compiled = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.25, start_s=0.0
        ).compile(rng())
        [(_, out)] = compiled.apply(
            rec(reader="reader-1", t=8.0, rssi=-60.0), 8.0, EmitLog()
        )
        assert out.rssi_dbm == pytest.approx(-58.0)

    def test_reset_steps_bias_to_zero_then_drift_resumes(self):
        fault = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.5, start_s=10.0,
            max_drift_db=20.0, reset_at_s=30.0,
        )
        assert fault.bias_at(29.9) == pytest.approx(9.95)
        assert fault.bias_at(30.0) == 0.0  # ops recalibration: one step
        assert fault.bias_at(34.0) == pytest.approx(2.0)  # aging resumes
        assert fault.bias_at(1000.0) == 20.0  # clamp still applies

    def test_reset_emits_calibration_reset_once(self):
        compiled = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.5, start_s=0.0, reset_at_s=10.0
        ).compile(rng())
        emit = EmitLog()
        compiled.apply(rec(reader="reader-1", t=5.0), 5.0, emit)
        compiled.apply(rec(reader="reader-1", t=10.0), 10.0, emit)
        compiled.apply(rec(reader="reader-1", t=11.0), 11.0, emit)
        assert emit.events == [
            ("calibration_reset", {"reader": "reader-1", "reset_t": 10.0})
        ]

    def test_reset_must_follow_start(self):
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault(
                "reader-1", drift_db_per_s=0.5, start_s=10.0, reset_at_s=10.0
            )
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault(
                "reader-1", drift_db_per_s=0.5, start_s=10.0, reset_at_s=-1.0
            )

    def test_zero_bias_passes_same_object(self):
        compiled = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.5, start_s=100.0
        ).compile(rng())
        record = rec(reader="reader-1", t=1.0)
        assert compiled.apply(record, 1.0, EmitLog())[0][1] is record

    def test_jitter_is_seed_deterministic(self):
        fault = CalibrationDriftFault(
            "reader-1", drift_db_per_s=0.0, jitter_db=1.0
        )
        a = fault.compile(rng(7)).apply(rec(reader="reader-1"), 5.0, EmitLog())
        b = fault.compile(rng(7)).apply(rec(reader="reader-1"), 5.0, EmitLog())
        assert a[0][1].rssi_dbm == b[0][1].rssi_dbm
        assert a[0][1].rssi_dbm != -50.0  # jitter actually applied

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault("", drift_db_per_s=0.1)
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault("r", drift_db_per_s=math.inf)
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault("r", drift_db_per_s=0.1, max_drift_db=-1.0)
        with pytest.raises(ConfigurationError):
            CalibrationDriftFault("r", drift_db_per_s=0.1, jitter_db=-0.5)


class TestDelayFault:
    def test_zero_delay_rejected(self):
        with pytest.raises(ConfigurationError, match="no-op"):
            DelayFault(delay_s=0.0, jitter_s=0.0)

    def test_base_delay_shifts_release_not_record(self):
        compiled = DelayFault(delay_s=1.5).compile(rng())
        record = rec(t=4.0)
        [(release, out)] = compiled.apply(record, 4.0, EmitLog())
        assert release == pytest.approx(5.5)
        assert out is record  # measurement timestamp untouched

    def test_jitter_bounded_and_deterministic(self):
        fault = DelayFault(delay_s=1.0, jitter_s=2.0)
        releases = [
            fault.compile(rng(3)).apply(rec(t=0.0), 0.0, EmitLog())[0][0]
            for _ in range(2)
        ]
        assert releases[0] == releases[1]
        assert 1.0 <= releases[0] <= 3.0

    def test_reader_filter(self):
        compiled = DelayFault(reader_id="reader-0", delay_s=9.0).compile(rng())
        record = rec(reader="reader-1", t=2.0)
        assert compiled.apply(record, 2.0, EmitLog()) == [(2.0, record)]


# ---------------------------------------------------------------------------
# Plans and presets
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rejects_non_models(self):
        with pytest.raises(ConfigurationError, match="not a fault model"):
            FaultPlan(["not-a-fault"])  # type: ignore[list-item]

    def test_immutable_composition(self):
        base = FaultPlan(seed=5)
        assert base.empty and len(base) == 0
        extended = base.with_fault(
            ReaderOutageFault("reader-0", start_s=0.0, duration_s=1.0)
        )
        assert base.empty  # original untouched
        assert len(extended) == 1 and not extended.empty
        assert extended.seed == 5
        reseeded = extended.with_seed(9)
        assert reseeded.seed == 9 and reseeded.faults == extended.faults
        assert [type(f).__name__ for f in extended] == ["ReaderOutageFault"]

    def test_compile_returns_fresh_state(self):
        plan = FaultPlan(
            [BurstLossFault(p_enter_bad=1.0, loss_bad=1.0)], seed=0
        )
        first, second = plan.compile()[0], plan.compile()[0]
        first.apply(rec(t=0.0), 0.0, EmitLog())  # flips `first` to bad
        emit = EmitLog()
        second.apply(rec(t=0.0), 0.0, emit)
        assert emit.kinds() == ["burst_state_bad"]  # fresh chain, own flip

    def test_per_fault_streams_do_not_interfere(self):
        # Same TagDeathFault at the same index; the *other* fault's
        # parameters change. The drawn death time must not move.
        death = TagDeathFault("tag-a", death_window_s=(10.0, 50.0))
        plan_a = FaultPlan([BurstLossFault(p_enter_bad=0.1), death], seed=11)
        plan_b = FaultPlan([BurstLossFault(p_enter_bad=0.9), death], seed=11)
        assert plan_a.compile()[1].death_time_s == plan_b.compile()[1].death_time_s

    def test_describe_one_line_per_fault(self):
        plan = chaos_preset("moderate")
        lines = plan.describe()
        assert len(lines) == len(plan)
        assert any("ReaderOutageFault" in line for line in lines)


class TestChaosPresets:
    @pytest.mark.parametrize(
        "name", ["none", "light", "moderate", "severe", "drift"]
    )
    def test_presets_compile(self, name: str):
        plan = chaos_preset(name, seed=1)
        compiled = plan.compile()
        assert len(compiled) == len(plan)
        assert plan.empty == (name == "none")

    def test_intensity_ordering(self):
        sizes = [
            len(chaos_preset(n))
            for n in ("none", "light", "moderate", "severe")
        ]
        assert sizes == sorted(sizes) and sizes[0] == 0

    def test_drift_preset_shape(self):
        # The calibration-stress level: wrong values, never missing
        # ones — drift plus one decaying-but-recovering reference tag,
        # no outages and no record loss.
        plan = chaos_preset("drift", seed=1)
        drifts = [f for f in plan if isinstance(f, CalibrationDriftFault)]
        deaths = [f for f in plan if isinstance(f, TagDeathFault)]
        assert len(drifts) + len(deaths) == len(plan)
        assert len(drifts) >= 3
        assert len({f.start_s for f in drifts}) == len(drifts)  # staggered
        assert any(f.reset_at_s is not None for f in drifts)
        [death] = deaths
        assert death.decay_db_per_s > 0 and death.recovery_time_s is not None

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos preset"):
            chaos_preset("apocalyptic")


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_empty_plan_fast_path(self):
        injector = FaultInjector(FaultPlan())
        records = [rec(t=float(i)) for i in range(5)]
        for i, record in enumerate(records):
            out = injector.process(record, float(i))
            assert out == [record] and out[0] is record  # same object
        assert injector.counters() == {
            "seen": 5, "dropped": 0, "modified": 0, "delayed": 0,
            "pending_delayed": 0, "transitions": 0,
        }
        assert injector.events == []

    def test_drop_accounting(self):
        plan = FaultPlan(
            [ReaderOutageFault("reader-0", start_s=2.0, duration_s=math.inf)]
        )
        injector = FaultInjector(plan)
        assert injector.process(rec(t=0.0), 0.0) == [rec(t=0.0)]
        assert injector.process(rec(t=3.0), 3.0) == []
        assert injector.process(rec(reader="reader-1", t=4.0), 4.0) != []
        c = injector.counters()
        assert (c["seen"], c["dropped"]) == (3, 1)
        assert [e.kind for e in injector.events] == ["reader_outage_start"]

    def test_modified_accounting(self):
        plan = FaultPlan(
            [CalibrationDriftFault("reader-0", drift_db_per_s=1.0)]
        )
        injector = FaultInjector(plan)
        [out] = injector.process(rec(t=5.0, rssi=-50.0), 5.0)
        assert out.rssi_dbm == pytest.approx(-45.0)
        assert injector.counters()["modified"] == 1

    def test_delay_buffering_release_and_flush(self):
        injector = FaultInjector(FaultPlan([DelayFault(delay_s=2.0)]))
        first, second = rec(tag="a", t=0.0), rec(tag="b", t=1.0)
        assert injector.process(first, 0.0) == []
        assert injector.process(second, 1.0) == []
        assert injector.pending_delayed == 2
        assert injector.release_due(1.9) == []
        assert injector.release_due(2.0) == [first]  # oldest first
        assert injector.pending_delayed == 1
        assert injector.flush() == [second]
        assert injector.pending_delayed == 0
        assert injector.counters()["delayed"] == 2

    def test_delayed_records_ride_along_with_later_process_calls(self):
        injector = FaultInjector(
            FaultPlan([DelayFault(reader_id="reader-0", delay_s=1.0)])
        )
        delayed = rec(reader="reader-0", t=0.0)
        assert injector.process(delayed, 0.0) == []
        passthrough = rec(reader="reader-1", t=2.0)
        # The due delayed record surfaces before the new passthrough.
        assert injector.process(passthrough, 2.0) == [delayed, passthrough]

    def test_dropped_records_skip_later_faults(self):
        # Outage drops first; the delay fault must never see the record.
        plan = FaultPlan([
            ReaderOutageFault("reader-0", start_s=0.0, duration_s=math.inf),
            DelayFault(delay_s=5.0),
        ])
        injector = FaultInjector(plan)
        assert injector.process(rec(t=1.0), 1.0) == []
        assert injector.pending_delayed == 0
        assert injector.counters()["dropped"] == 1

    def test_metrics_mirroring(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(
            [ReaderOutageFault("reader-0", start_s=0.0, duration_s=math.inf)]
        )
        injector = FaultInjector(plan, metrics=metrics)
        injector.process(rec(t=1.0), 1.0)
        injector.process(rec(reader="reader-1", t=1.0), 1.0)
        rendered = metrics.render_prometheus()
        assert "faults_records_seen_total 2" in rendered
        assert "faults_records_dropped_total 1" in rendered
        assert "faults_transitions_total 1" in rendered


def _synthetic_stream() -> list[tuple[float, ReadingRecord]]:
    """A dense deterministic record stream over 4 readers x 6 tags."""
    out = []
    tags = [f"ref-{i}" for i in range(4)] + ["tag-a", "tag-b"]
    t = 0.0
    for step in range(120):
        t = step * 0.5
        for k in range(4):
            for j, tag in enumerate(tags):
                out.append(
                    (t, rec(reader=f"reader-{k}", tag=tag, t=t,
                            rssi=-50.0 - k - j))
                )
    return out


class TestInjectorDeterminism:
    @staticmethod
    def _run(plan: FaultPlan):
        injector = FaultInjector(plan)
        served = []
        for now_s, record in _synthetic_stream():
            for out in injector.process(record, now_s):
                served.append(
                    (out.reader_id, out.tag_id, out.time_s, out.rssi_dbm)
                )
        for out in injector.flush():
            served.append((out.reader_id, out.tag_id, out.time_s, out.rssi_dbm))
        return served, [e.as_tuple() for e in injector.events], injector.counters()

    def test_same_seed_replays_identically(self):
        plan = chaos_preset("severe", seed=7)
        served_a, events_a, counters_a = self._run(plan)
        served_b, events_b, counters_b = self._run(plan)
        assert served_a == served_b
        assert events_a == events_b
        assert counters_a == counters_b
        assert counters_a["dropped"] > 0  # chaos actually happened
        assert counters_a["modified"] > 0
        assert counters_a["delayed"] > 0

    def test_different_seed_changes_the_schedule(self):
        _, events_7, _ = self._run(chaos_preset("severe", seed=7))
        _, events_8, _ = self._run(chaos_preset("severe", seed=8))
        assert events_7 != events_8


# ---------------------------------------------------------------------------
# End-to-end: chaotic service sessions
# ---------------------------------------------------------------------------

from repro import VIREConfig  # noqa: E402
from repro.hardware.deployment import build_paper_deployment  # noqa: E402
from repro.hardware.middleware import SmoothingSpec  # noqa: E402
from repro.service import LocalizationService, ServiceConfig  # noqa: E402

from .conftest import make_clean_environment  # noqa: E402

TRACKING = {"asset": (1.3, 1.7), "cart": (2.4, 0.9)}

#: Short staleness horizon so injected outages become visible to the
#: middleware (and hence the degradation ladder) within a short session.
MAX_AGE_S = 6.0


class StubScenario:
    name = "chaos-stub"
    tracking_tags = TRACKING


class ChaosService(LocalizationService):
    """Service bound to a deterministic clean-environment deployment."""

    def __init__(self, seed: int, config: ServiceConfig):
        super().__init__(config)
        self._seed = seed

    def build_deployment(self, scenario):  # noqa: ARG002 - fixed world
        return build_paper_deployment(
            make_clean_environment(),
            tracking_tags={f"tag-{l}": p for l, p in TRACKING.items()},
            seed=self._seed,
            smoothing=SmoothingSpec(max_age_s=MAX_AGE_S),
        )


def chaos_config(**changes) -> ServiceConfig:
    base = ServiceConfig(
        query_interval_s=1.0,
        stream_step_s=0.5,
        request_deadline_s=None,
        breaker_recovery_timeout_s=8.0,
        vire=VIREConfig(subdivisions=5),
    )
    return base.with_(**changes) if changes else base


def run_session(plan, *, seed: int = 21, duration_s: float = 20.0, **cfg):
    service = ChaosService(seed=seed, config=chaos_config(**cfg))
    return service.run(StubScenario(), duration_s, fault_plan=plan)


class TestChaosSessions:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        baseline = run_session(None, duration_s=4.0)
        empty = run_session(FaultPlan(), duration_s=4.0)
        assert len(baseline.results) == len(empty.results) > 0
        for a, b in zip(baseline.results, empty.results):
            assert a.position == b.position  # bitwise, not approx
            assert (a.tag_id, a.degraded, a.reason) == (
                b.tag_id, b.degraded, b.reason
            )
        # The injector was live (counters present) yet touched nothing.
        assert empty.summary["fault_records_seen"] > 0
        assert empty.summary["fault_records_dropped"] == 0

    def test_single_reader_outage_takes_the_subset_path(self):
        plan = FaultPlan(
            [ReaderOutageFault("reader-0", start_s=0.0, duration_s=math.inf)],
            seed=0,
        )
        report = run_session(plan)
        summary = report.summary
        assert summary["fault_records_dropped"] > 0
        # Every request was still answered...
        assert summary["availability"] == 1.0
        # ...and the VIRE-on-surviving-subset rung actually fired once
        # the dead reader's series crossed the staleness horizon.
        reasons = {r.reason for r in report.results}
        assert "partial_readers" in reasons
        # The breaker noticed the dead reader.
        assert summary["breaker_transitions"] >= 1

    def test_chaotic_session_replays_exactly(self):
        plan = FaultPlan(
            [
                ReaderOutageFault(
                    "reader-0", start_s=0.0, duration_s=math.inf
                ),
                BurstLossFault(
                    reader_id="reader-2", p_enter_bad=0.2, loss_bad=0.7
                ),
            ],
            seed=13,
        )
        first = run_session(plan, duration_s=16.0)
        second = run_session(plan, duration_s=16.0)
        assert [r.position for r in first.results] == [
            r.position for r in second.results
        ]
        assert [r.reason for r in first.results] == [
            r.reason for r in second.results
        ]
        for key in ("fault_records_seen", "fault_records_dropped",
                    "fault_records_transitions", "results", "degraded"):
            assert first.summary[key] == second.summary[key], key

    def test_strict_mode_never_masks(self):
        plan = FaultPlan(
            [ReaderOutageFault("reader-0", start_s=0.0, duration_s=math.inf)],
            seed=0,
        )
        report = run_session(plan, allow_partial=False)
        reasons = {r.reason for r in report.results}
        assert "partial_readers" not in reasons
        assert "quorum_unmet" not in reasons
        # The outage still bites: requests fall back to stale answers.
        assert "no_reading" in reasons
