"""Crash-recovery tests: the determinism witness.

The contract under test (docs/RUNTIME.md): a checkpointed session that
is killed at an arbitrary tick — hard (``SimulatedCrash``) or graceful
(``KeyboardInterrupt``) — and then resumed produces a
:meth:`SessionReport.witness_document` **byte-identical** to the same
seeded session run uninterrupted. Checkpointing itself must also be
invisible: attaching a write-ahead log never changes a single answer.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro import VIREConfig, build_paper_deployment
from repro.cli import _graceful_sigterm, main
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    EstimationError,
)
from repro.faults import CrashPoint, SimulatedCrash
from repro.runtime import RuntimePolicy
from repro.service import LocalizationService, ServiceConfig, ServicePipeline

from .conftest import make_clean_environment

TRACKING = {"asset": (1.3, 1.7), "cart": (2.4, 0.9)}
DURATION_S = 8.0


def make_scenario_deployment(seed: int):
    return build_paper_deployment(
        make_clean_environment(),
        tracking_tags={f"tag-{label}": pos for label, pos in TRACKING.items()},
        seed=seed,
    )


def service_config(**changes) -> ServiceConfig:
    base = ServiceConfig(
        max_batch_size=4,
        max_latency_s=0.5,
        request_deadline_s=None,
        query_interval_s=1.0,
        stream_step_s=0.5,
        vire=VIREConfig(subdivisions=5),
        runtime=RuntimePolicy(checkpoint_interval_s=2.0),
    )
    return base.with_(**changes) if changes else base


class StubScenario:
    """Minimal scenario stand-in: the service reads only tracking_tags."""

    name = "stub"
    tracking_tags = TRACKING


class SessionService(LocalizationService):
    """LocalizationService bound to a deterministic stub deployment."""

    def __init__(self, seed: int, config: ServiceConfig | None = None):
        super().__init__(config or service_config())
        self._seed = seed

    def build_deployment(self, scenario):  # noqa: ARG002 - fixed world
        return make_scenario_deployment(self._seed)


def witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def run_baseline(seed: int = 11):
    return SessionService(seed).run(StubScenario(), DURATION_S)


def mid_session_time(report) -> float:
    """A kill time strictly inside the live window, tick-deterministic."""
    times = sorted(r.completed_at_s for r in report.results)
    return times[len(times) // 2]


# -- checkpointing is invisible ----------------------------------------------

class TestWitnessIdentity:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        baseline = run_baseline()
        ckpt = SessionService(11).run(
            StubScenario(), DURATION_S,
            checkpoint_path=tmp_path / "s.ckpt",
        )
        assert witness(ckpt) == witness(baseline)
        assert ckpt.summary["checkpoint_results_logged"] == len(ckpt.results)
        assert ckpt.summary["checkpoint_snapshots"] >= 2  # initial + final

    def test_hard_crash_then_resume_is_byte_identical(self, tmp_path):
        baseline = run_baseline()
        path = tmp_path / "s.ckpt"
        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S,
                checkpoint_path=path,
                crash_point=CrashPoint(at_s=mid_session_time(baseline)),
            )
        resumed = SessionService(11).run(
            StubScenario(), DURATION_S, checkpoint_path=path, resume=True
        )
        assert witness(resumed) == witness(baseline)
        assert resumed.summary["resumed"] == 1.0
        assert resumed.summary["resume_results_restored"] > 0

    def test_graceful_interrupt_then_resume_is_byte_identical(self, tmp_path):
        baseline = run_baseline()
        path = tmp_path / "s.ckpt"
        cutoff = len(baseline.results) // 2
        seen: list = []

        def interrupt_midway(result) -> None:
            seen.append(result)
            if len(seen) >= cutoff:
                raise KeyboardInterrupt

        interrupted = SessionService(11).run(
            StubScenario(), DURATION_S,
            on_result=interrupt_midway, checkpoint_path=path,
        )
        assert interrupted.summary["interrupted"] == 1.0
        assert len(interrupted.results) < len(baseline.results)

        resumed = SessionService(11).run(
            StubScenario(), DURATION_S, checkpoint_path=path, resume=True
        )
        assert witness(resumed) == witness(baseline)

    def test_double_crash_double_resume(self, tmp_path):
        baseline = run_baseline()
        path = tmp_path / "s.ckpt"
        times = sorted(r.completed_at_s for r in baseline.results)
        first, second = times[len(times) // 4], times[3 * len(times) // 4]

        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S, checkpoint_path=path,
                crash_point=CrashPoint(at_s=first),
            )
        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S, checkpoint_path=path,
                resume=True, crash_point=CrashPoint(at_s=second),
            )
        resumed = SessionService(11).run(
            StubScenario(), DURATION_S, checkpoint_path=path, resume=True
        )
        assert witness(resumed) == witness(baseline)


# -- resume guard rails -------------------------------------------------------

class TestResumeGuards:
    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            SessionService(11).run(StubScenario(), DURATION_S, resume=True)

    def test_resume_from_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            SessionService(11).run(
                StubScenario(), DURATION_S,
                checkpoint_path=tmp_path / "absent.ckpt", resume=True,
            )

    def test_header_mismatch_refused(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S, checkpoint_path=path,
                crash_point=CrashPoint(at_s=0.0),
            )
        other = SessionService(
            11, service_config(query_interval_s=2.0)
        )
        with pytest.raises(CheckpointError, match="header mismatch"):
            other.run(
                StubScenario(), DURATION_S, checkpoint_path=path, resume=True
            )


# -- checkpoint file shape ----------------------------------------------------

class TestCheckpointFileShape:
    @staticmethod
    def _lines(path):
        return [json.loads(s) for s in path.read_text().splitlines()]

    def test_clean_run_ends_with_end_marker(self, tmp_path):
        path = tmp_path / "s.ckpt"
        SessionService(11).run(
            StubScenario(), DURATION_S, checkpoint_path=path
        )
        lines = self._lines(path)
        assert lines[0]["type"] == "header"
        assert lines[-1]["type"] == "end"
        assert lines[-1]["interrupted"] is False

    def test_hard_crash_leaves_no_end_marker(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S, checkpoint_path=path,
                crash_point=CrashPoint(at_s=0.0),
            )
        types = [d["type"] for d in self._lines(path)]
        assert "end" not in types  # kill -9 semantics: no polite footer

    def test_resume_writes_resume_marker(self, tmp_path):
        path = tmp_path / "s.ckpt"
        with pytest.raises(SimulatedCrash):
            SessionService(11).run(
                StubScenario(), DURATION_S, checkpoint_path=path,
                crash_point=CrashPoint(at_s=0.0),
            )
        SessionService(11).run(
            StubScenario(), DURATION_S, checkpoint_path=path, resume=True
        )
        types = [d["type"] for d in self._lines(path)]
        assert types.count("resume") == 1
        assert types[-1] == "end"


# -- crash point semantics ----------------------------------------------------

class TestCrashPoint:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPoint(at_s=-1.0)

    def test_due_and_fire(self):
        point = CrashPoint(at_s=2.0)
        assert not point.due(1.9)
        point.fire(1.9)  # not due: no-op
        assert point.due(2.0)
        with pytest.raises(SimulatedCrash, match="t=2"):
            point.fire(2.0)


# -- supervised serving path: shard salvage -----------------------------------

class TestSupervisedServing:
    def _pipeline(self, supervised: bool) -> ServicePipeline:
        deployment = make_scenario_deployment(5)
        deployment.simulator.warm_up()
        config = service_config(
            runtime=RuntimePolicy(supervised=supervised),
        )
        return ServicePipeline(
            deployment.grid, deployment.simulator.middleware, config
        ), deployment

    def test_poisoned_estimator_degrades_not_raises(self):
        pipeline, deployment = self._pipeline(supervised=True)
        real = pipeline.vire.estimate_outcomes

        def poisoned(readings):
            if len(readings) > 0:
                raise RuntimeError("estimator pass blew up")
            return real(readings)

        pipeline.vire.estimate_outcomes = poisoned  # type: ignore[method-assign]
        now = deployment.simulator.now
        pipeline.submit_request("tag-asset", now)
        results = pipeline.drain(now)
        assert len(results) == 1
        assert results[0].degraded
        assert results[0].estimator == "LANDMARC"
        assert (
            pipeline.metrics.counter(
                "runtime_shard_salvages_total", ""
            ).value >= 1.0
        )

    def test_unsupervised_pipeline_propagates(self):
        pipeline, deployment = self._pipeline(supervised=False)

        def poisoned(readings):
            raise RuntimeError("estimator pass blew up")

        pipeline.vire.estimate_outcomes = poisoned  # type: ignore[method-assign]
        now = deployment.simulator.now
        pipeline.submit_request("tag-asset", now)
        with pytest.raises(RuntimeError, match="blew up"):
            pipeline.drain(now)

    def test_supervised_session_matches_unsupervised(self):
        plain = SessionService(11).run(StubScenario(), DURATION_S)
        supervised = SessionService(
            11, service_config(runtime=RuntimePolicy(supervised=True))
        ).run(StubScenario(), DURATION_S)
        assert witness(supervised) == witness(plain)


# -- CLI: serve --kill-at / --resume / --json ---------------------------------

class TestServeCli:
    ARGS = ["serve", "--env", "Env1", "--duration", "8", "--seed", "3",
            "--query-interval", "1.0"]

    def test_kill_resume_json_byte_identical(self, tmp_path, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        baseline = capsys.readouterr().out

        path = str(tmp_path / "s.ckpt")
        with pytest.raises(SystemExit) as exc:
            main(self.ARGS + ["--checkpoint", path, "--kill-at", "4",
                              "--quiet"])
        assert exc.value.code == 17
        captured = capsys.readouterr()
        assert "simulated crash" in captured.err

        assert main(self.ARGS + ["--checkpoint", path, "--resume",
                                 "--json"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == baseline

    def test_json_is_valid_and_carries_identity(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["env"] == "Env1"
        assert doc["seed"] == 3
        assert doc["n_results"] == len(doc["results"])


# -- SIGTERM translation ------------------------------------------------------

class TestGracefulSigterm:
    def test_sigterm_becomes_keyboard_interrupt_and_restores(self):
        previous = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _graceful_sigterm():
                assert signal.getsignal(signal.SIGTERM) is not previous
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(1.0)  # signal delivery preempts the sleep
                pytest.fail("SIGTERM was not delivered")
        assert signal.getsignal(signal.SIGTERM) is previous
