"""Tests for the service pipeline: batching, degradation, accounting.

The serving contract under test: every accepted request yields a result
or a counted failure — never an exception — and every degraded result is
flagged with the reason the primary VIRE path was not used.
"""

from __future__ import annotations

import itertools

import pytest

from repro import VIREConfig, build_paper_deployment
from repro.exceptions import ConfigurationError
from repro.service import ServiceConfig, ServicePipeline

from .conftest import make_clean_environment


class FakeClock:
    """Deterministic perf clock: each call advances 1 ms."""

    def __init__(self):
        self._ticks = itertools.count()

    def __call__(self) -> float:
        return next(self._ticks) * 1e-3


@pytest.fixture
def deployment():
    d = build_paper_deployment(
        make_clean_environment(),
        tracking_tags={"asset": (1.3, 1.7)},
        seed=5,
    )
    d.simulator.warm_up()
    return d


def make_pipeline(deployment, **config_changes) -> ServicePipeline:
    config = ServiceConfig(
        max_batch_size=4, max_latency_s=1.0, request_deadline_s=None,
        vire=VIREConfig(subdivisions=5),
    ).with_(**config_changes)
    return ServicePipeline(
        deployment.grid,
        deployment.simulator.middleware,
        config,
        perf_clock=FakeClock(),
    )


class TestPrimaryPath:
    def test_successful_vire_estimate(self, deployment):
        pipeline = make_pipeline(deployment)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        results = pipeline.drain(now)
        assert len(results) == 1
        r = results[0]
        assert r.estimator == "VIRE"
        assert not r.degraded
        assert r.reason is None
        assert r.processing_latency_s > 0  # fake clock ticked
        error = ((r.position[0] - 1.3) ** 2 + (r.position[1] - 1.7) ** 2) ** 0.5
        assert error < 1.5

    def test_batching_flush_on_size(self, deployment):
        pipeline = make_pipeline(deployment, max_batch_size=2)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        assert pipeline.process_due(now) == []
        pipeline.submit_request("asset", now)
        results = pipeline.process_due(now)
        assert len(results) == 2
        assert pipeline.batcher.flushes_by_reason["size"] == 1

    def test_batching_flush_on_deadline(self, deployment):
        pipeline = make_pipeline(deployment, max_batch_size=100,
                                 max_latency_s=0.5)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        assert pipeline.process_due(now) == []
        results = pipeline.process_due(now + 0.5)
        assert len(results) == 1
        assert pipeline.batcher.flushes_by_reason["deadline"] == 1


class TestEmptyIntersectionDegradation:
    def test_falls_back_to_landmarc_instead_of_raising(self, deployment):
        # A vanishing fixed threshold empties every proximity map, which
        # (with the service's forced empty_fallback="error") surfaces as
        # EstimationError inside the pipeline — and must come back out as
        # a flagged LANDMARC answer, not an exception.
        pipeline = make_pipeline(
            deployment,
            vire=VIREConfig(
                subdivisions=5, threshold_mode="fixed",
                fixed_threshold_db=1e-9,
            ),
        )
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        results = pipeline.drain(now)
        assert len(results) == 1
        r = results[0]
        assert r.degraded
        assert r.reason == "empty_intersection"
        assert r.estimator == "LANDMARC"
        error = ((r.position[0] - 1.3) ** 2 + (r.position[1] - 1.7) ** 2) ** 0.5
        assert error < 2.0  # LANDMARC is coarse but sane

    def test_forces_error_fallback_internally(self, deployment):
        # Even if the caller's VIREConfig asks for silent relaxation, the
        # pipeline owns degradation accounting.
        pipeline = make_pipeline(
            deployment, vire=VIREConfig(subdivisions=5, empty_fallback="relax")
        )
        assert pipeline.vire.config.empty_fallback == "error"

    def test_degradation_metrics(self, deployment):
        pipeline = make_pipeline(
            deployment,
            vire=VIREConfig(
                subdivisions=5, threshold_mode="fixed",
                fixed_threshold_db=1e-9,
            ),
        )
        now = deployment.simulator.now
        for _ in range(3):
            pipeline.submit_request("asset", now)
        pipeline.drain(now)
        summary = pipeline.metrics_summary()
        assert summary["degraded"] == 3
        assert summary["degraded_fraction"] == 1.0
        assert (
            pipeline.metrics.get("service_degraded_empty_intersection_total").value
            == 3
        )


class TestDeadlineDegradation:
    def test_past_deadline_takes_cheap_path(self, deployment):
        pipeline = make_pipeline(deployment, request_deadline_s=1.0)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        # Batch executes 5 s later: the request is long past its deadline.
        results = pipeline.drain(now + 5.0)
        assert len(results) == 1
        r = results[0]
        assert r.degraded
        assert r.reason == "deadline"
        assert r.estimator == "LANDMARC"
        assert r.queue_wait_s == pytest.approx(5.0)

    def test_within_deadline_keeps_vire(self, deployment):
        pipeline = make_pipeline(deployment, request_deadline_s=10.0)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        results = pipeline.drain(now + 0.5)
        assert results[0].estimator == "VIRE"
        assert not results[0].degraded


class TestNoReadingDegradation:
    def test_unknown_tag_fails_counted_not_raised(self, deployment):
        pipeline = make_pipeline(deployment)
        now = deployment.simulator.now
        pipeline.submit_request("ghost", now)
        results = pipeline.drain(now)
        assert results == []  # nothing to answer with
        assert pipeline.metrics_summary()["failed"] == 1

    def test_stale_readings_serve_last_known(self, deployment):
        pipeline = make_pipeline(deployment)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        first = pipeline.drain(now)[0]
        # Far in the future every series is stale -> snapshot impossible.
        pipeline.submit_request("asset", now + 1e6)
        results = pipeline.drain(now + 1e6)
        assert len(results) == 1
        r = results[0]
        assert r.degraded
        assert r.reason == "no_reading"
        assert r.estimator == "last-known"
        assert r.position == first.position


class TestCacheWiring:
    def test_cache_populated_and_mirrored(self, deployment):
        pipeline = make_pipeline(deployment, cache_enabled=True)
        now = deployment.simulator.now
        for _ in range(3):
            pipeline.submit_request("asset", now)
        pipeline.drain(now)
        assert pipeline.cache is not None
        assert pipeline.cache.hits > 0  # same snapshot shared across batch
        summary = pipeline.metrics_summary()
        assert summary["cache_hit_rate"] == pipeline.cache.hit_rate
        assert (
            pipeline.metrics.get("service_cache_hits_total").value
            == pipeline.cache.hits
        )

    def test_cache_disabled(self, deployment):
        pipeline = make_pipeline(deployment, cache_enabled=False)
        now = deployment.simulator.now
        pipeline.submit_request("asset", now)
        pipeline.drain(now)
        assert pipeline.cache is None
        assert pipeline.metrics_summary()["cache_hit_rate"] == 0.0


class TestLatencyAccounting:
    def test_latency_histogram_counts_every_result(self, deployment):
        pipeline = make_pipeline(deployment)
        now = deployment.simulator.now
        for _ in range(4):
            pipeline.submit_request("asset", now)
        pipeline.drain(now)
        h = pipeline.metrics.get("service_localization_latency_seconds")
        assert h.count == 4
        summary = pipeline.metrics_summary()
        assert summary["latency_p50_s"] > 0
        assert summary["latency_p99_s"] >= summary["latency_p50_s"]


class TestConfigValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(request_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(query_interval_s=-1.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(stream_step_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_batches_per_tick=0)
        assert ServiceConfig(max_batches_per_tick=None).max_batches_per_tick \
            is None
        assert ServiceConfig(max_batches_per_tick=2).max_batches_per_tick == 2
