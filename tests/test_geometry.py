"""Tests for repro.geometry: vectors, rooms, grids, placements."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geometry import (
    BOUNDARY_TAGS,
    NON_BOUNDARY_TAGS,
    ReferenceGrid,
    Room,
    Segment,
    Wall,
    corner_reader_positions,
    figure2a_tracking_tags,
    paper_testbed_grid,
    rectangular_room,
    reflect_point,
    segment_intersection,
    segments_intersect,
)
from repro.geometry.vector import point_segment_distance

coord = st.floats(-50, 50, allow_nan=False)


class TestSegment:
    def test_length(self):
        assert Segment((0, 0), (3, 4)).length == pytest.approx(5.0)

    def test_midpoint(self):
        assert Segment((0, 0), (2, 2)).midpoint == (1.0, 1.0)

    def test_rejects_degenerate(self):
        with pytest.raises(GeometryError, match="degenerate"):
            Segment((1, 1), (1, 1))

    def test_normal_perpendicular(self):
        s = Segment((0, 0), (1, 0))
        assert float(s.normal @ s.direction) == pytest.approx(0.0)


class TestIntersection:
    def test_crossing_segments(self):
        s1 = Segment((0, 0), (2, 2))
        s2 = Segment((0, 2), (2, 0))
        assert segment_intersection(s1, s2) == pytest.approx((1.0, 1.0))

    def test_parallel_non_intersecting(self):
        s1 = Segment((0, 0), (1, 0))
        s2 = Segment((0, 1), (1, 1))
        assert segment_intersection(s1, s2) is None

    def test_collinear_overlap_returns_midpoint(self):
        s1 = Segment((0, 0), (4, 0))
        s2 = Segment((2, 0), (6, 0))
        pt = segment_intersection(s1, s2)
        assert pt == pytest.approx((3.0, 0.0))

    def test_collinear_disjoint(self):
        s1 = Segment((0, 0), (1, 0))
        s2 = Segment((2, 0), (3, 0))
        assert segment_intersection(s1, s2) is None

    def test_endpoint_touch_counts(self):
        s1 = Segment((0, 0), (1, 1))
        s2 = Segment((1, 1), (2, 0))
        assert segments_intersect(s1, s2)

    def test_near_miss(self):
        s1 = Segment((0, 0), (1, 0))
        s2 = Segment((0.5, 0.01), (0.5, 1))
        assert not segments_intersect(s1, s2)

    def test_symmetry_near_degenerate_regression(self):
        """Hypothesis-found counterexample: a ~1e-11-long segment used to
        make ``segments_intersect`` asymmetric (the parallel/collinear
        classification was measured against the first segment only)."""
        tiny = Segment((8.407316335369382e-12, 0.0), (0.0, 0.0))
        other = Segment((1.0, 0.0), (0.0, 0.0625))
        assert segments_intersect(tiny, other) == segments_intersect(other, tiny)
        assert not segments_intersect(tiny, other)

    def test_point_like_segment_on_segment_intersects(self):
        tiny = Segment((0.5, 1e-11), (0.5, 0.0))
        base = Segment((0.0, 0.0), (1.0, 0.0))
        assert segments_intersect(tiny, base)
        assert segments_intersect(base, tiny)

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        try:
            s1 = Segment((ax, ay), (bx, by))
            s2 = Segment((cx, cy), (dx, dy))
        except GeometryError:
            return
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)


class TestReflection:
    def test_reflect_across_x_axis(self):
        line = Segment((0, 0), (1, 0))
        assert reflect_point((2.0, 3.0), line) == pytest.approx((2.0, -3.0))

    def test_reflect_point_on_line_fixed(self):
        line = Segment((0, 0), (1, 1))
        assert reflect_point((0.5, 0.5), line) == pytest.approx((0.5, 0.5))

    @given(coord, coord)
    def test_involution(self, px, py):
        line = Segment((0.0, -1.0), (2.0, 5.0))
        once = reflect_point((px, py), line)
        twice = reflect_point(once, line)
        assert twice == pytest.approx((px, py), abs=1e-8)

    def test_distance_preserved_to_line_points(self):
        line = Segment((0, 0), (3, 1))
        p = (1.0, 2.0)
        img = reflect_point(p, line)
        for t in (0.0, 0.5, 1.0):
            on_line = (3 * t, t)
            d1 = np.hypot(p[0] - on_line[0], p[1] - on_line[1])
            d2 = np.hypot(img[0] - on_line[0], img[1] - on_line[1])
            assert d1 == pytest.approx(d2)


class TestPointSegmentDistance:
    def test_interior_projection(self):
        seg = Segment((0, 0), (2, 0))
        assert point_segment_distance((1, 1), seg) == pytest.approx(1.0)

    def test_clamps_to_endpoint(self):
        seg = Segment((0, 0), (1, 0))
        assert point_segment_distance((3, 0), seg) == pytest.approx(2.0)


class TestRoom:
    def test_rectangular_room_has_four_walls(self):
        room = rectangular_room(5, 4)
        assert len(room.walls) == 4
        assert room.width == 5
        assert room.height == 4

    def test_open_sides_not_reflective(self):
        room = rectangular_room(5, 4, open_sides=("top",))
        top = [w for w in room.walls if w.name == "top"][0]
        assert top.reflectivity == 0.0
        assert top.attenuation_db == 0.0
        assert len(room.reflective_walls) == 3

    def test_unknown_open_side_rejected(self):
        with pytest.raises(GeometryError, match="unknown open_sides"):
            rectangular_room(5, 4, open_sides=("north",))

    def test_contains(self):
        room = rectangular_room(5, 4, origin=(-1, -1))
        assert room.contains((0, 0))
        assert not room.contains((5, 0))
        assert room.contains((4.5, 0), pad=1.0)

    def test_crossing_attenuation_counts_walls(self):
        room = rectangular_room(4, 4, attenuation_db=7.0)
        # Path fully inside: crosses nothing.
        assert room.crossing_attenuation_db((1, 1), (3, 3)) == 0.0
        # Path leaving through one wall.
        assert room.crossing_attenuation_db((1, 1), (6, 1)) == 7.0

    def test_with_walls_appends(self):
        room = rectangular_room(4, 4)
        extra = Wall(Segment((1, 1), (2, 1)), attenuation_db=3.0)
        bigger = room.with_walls([extra])
        assert len(bigger.walls) == 5
        assert len(room.walls) == 4  # original untouched

    def test_wall_outside_bounds_rejected(self):
        with pytest.raises(GeometryError, match="outside room bounds"):
            Room(bounds=(0, 0, 2, 2), walls=(Wall(Segment((0, 0), (5, 0))),))

    def test_wall_validation(self):
        with pytest.raises(Exception):
            Wall(Segment((0, 0), (1, 0)), reflectivity=1.5)

    def test_empty_bounds_rejected(self):
        with pytest.raises(GeometryError, match="empty room bounds"):
            Room(bounds=(0, 0, 0, 2))


class TestReferenceGrid:
    def test_paper_grid_dimensions(self, grid):
        assert grid.n_tags == 16
        assert grid.n_cells == 9
        assert grid.bounds == (0.0, 0.0, 3.0, 3.0)

    def test_tag_positions_row_major(self, grid):
        pos = grid.tag_positions()
        assert pos.shape == (16, 2)
        np.testing.assert_array_equal(pos[0], [0.0, 0.0])
        np.testing.assert_array_equal(pos[1], [1.0, 0.0])  # col varies first
        np.testing.assert_array_equal(pos[4], [0.0, 1.0])

    def test_tag_position_matches_flat_index(self, grid):
        for row in range(grid.rows):
            for col in range(grid.cols):
                flat = grid.flat_index(row, col)
                np.testing.assert_array_equal(
                    grid.tag_positions()[flat], grid.tag_position(row, col)
                )

    def test_out_of_range_indices_rejected(self, grid):
        with pytest.raises(GeometryError):
            grid.tag_position(4, 0)
        with pytest.raises(GeometryError):
            grid.flat_index(0, -1)

    def test_lattice_from_flat_roundtrip(self, grid):
        flat = np.arange(16.0)
        lattice = grid.lattice_from_flat(flat)
        assert lattice.shape == (4, 4)
        assert lattice[1, 2] == flat[grid.flat_index(1, 2)]

    def test_lattice_from_flat_rejects_wrong_size(self, grid):
        with pytest.raises(GeometryError):
            grid.lattice_from_flat(np.zeros(15))

    def test_cell_of_interior_point(self, grid):
        assert grid.cell_of((0.5, 0.5)) == (0, 0)
        assert grid.cell_of((2.5, 1.5)) == (1, 2)

    def test_cell_of_far_edge_maps_to_last_cell(self, grid):
        assert grid.cell_of((3.0, 3.0)) == (2, 2)

    def test_cell_of_outside_rejected(self, grid):
        with pytest.raises(GeometryError):
            grid.cell_of((3.5, 0.0))

    def test_rectangular_grid_supported(self):
        g = ReferenceGrid(rows=3, cols=5, spacing_x=0.5, spacing_y=2.0)
        assert g.width == 2.0
        assert g.height == 4.0
        assert g.n_cells == 8

    def test_minimum_grid_size_enforced(self):
        with pytest.raises(Exception):
            ReferenceGrid(rows=1, cols=4)

    def test_scaled_preserves_counts(self, grid):
        s = grid.scaled(2.0)
        assert s.n_tags == grid.n_tags
        assert s.spacing_x == 2.0

    @given(st.integers(2, 6), st.integers(2, 6))
    def test_positions_count_matches(self, rows, cols):
        g = ReferenceGrid(rows=rows, cols=cols)
        assert g.tag_positions().shape == (rows * cols, 2)


class TestPlacement:
    def test_corner_readers_outside_grid(self, grid):
        readers = corner_reader_positions(grid, margin=1.0)
        assert readers.shape == (4, 2)
        np.testing.assert_array_equal(readers[0], [-1.0, -1.0])
        np.testing.assert_array_equal(readers[3], [4.0, 4.0])

    def test_negative_margin_rejected(self, grid):
        with pytest.raises(GeometryError):
            corner_reader_positions(grid, margin=-0.5)

    def test_nine_tracking_tags(self, grid):
        tags = figure2a_tracking_tags(grid)
        assert set(tags) == set(range(1, 10))

    def test_interior_tags_inside_grid(self, grid):
        tags = figure2a_tracking_tags(grid)
        for label in NON_BOUNDARY_TAGS:
            assert grid.contains(tags[label]), label

    def test_tag9_outside_grid(self, grid):
        tags = figure2a_tracking_tags(grid)
        assert not grid.contains(tags[9])
        assert grid.contains(tags[9], pad=0.5)

    def test_boundary_partition_complete(self):
        assert set(NON_BOUNDARY_TAGS) | set(BOUNDARY_TAGS) == set(range(1, 10))
        assert not set(NON_BOUNDARY_TAGS) & set(BOUNDARY_TAGS)

    def test_placements_scale_with_grid(self):
        big = ReferenceGrid(rows=4, cols=4, spacing_x=2.0, spacing_y=2.0)
        tags_small = figure2a_tracking_tags(paper_testbed_grid())
        tags_big = figure2a_tracking_tags(big)
        for label in tags_small:
            np.testing.assert_allclose(
                np.asarray(tags_big[label]) / 2.0, tags_small[label]
            )
