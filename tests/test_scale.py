"""Tests for the large-scale (§6) study utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LandmarcEstimator,
    ReferenceGrid,
    VIREConfig,
    VIREEstimator,
    run_scenario,
)
from repro.exceptions import ConfigurationError
from repro.experiments.scale import (
    large_scale_scenario,
    perimeter_reader_positions,
    scaled_environment,
)
from repro.rf import env3

from .conftest import make_clean_environment


class TestScaledEnvironment:
    def test_room_contains_reader_ring(self):
        grid = ReferenceGrid(rows=8, cols=8)
        env = scaled_environment(env3(), grid)
        for pos in perimeter_reader_positions(grid):
            assert env.room.contains(pos, pad=1e-9)

    def test_channel_parameters_preserved(self):
        grid = ReferenceGrid(rows=6, cols=6)
        base = env3()
        env = scaled_environment(base, grid)
        assert env.path_loss == base.path_loss
        assert env.shadowing == base.shadowing
        assert env.reference_tag_offset_sigma_db == base.reference_tag_offset_sigma_db
        assert env.name == "Env3-L"

    def test_clearance_validated(self):
        grid = ReferenceGrid(rows=6, cols=6)
        with pytest.raises(ConfigurationError):
            scaled_environment(env3(), grid, wall_clearance_m=0.5)


class TestPerimeterReaders:
    def test_corners_included(self):
        grid = ReferenceGrid(rows=4, cols=4)
        ring = perimeter_reader_positions(grid, per_side=1)
        as_set = {tuple(p) for p in ring}
        for corner in ((-1.0, -1.0), (4.0, -1.0), (-1.0, 4.0), (4.0, 4.0)):
            assert corner in as_set

    def test_counts_scale_with_per_side(self):
        grid = ReferenceGrid(rows=4, cols=4)
        small = perimeter_reader_positions(grid, per_side=1)
        large = perimeter_reader_positions(grid, per_side=3)
        assert large.shape[0] > small.shape[0]

    def test_no_duplicates(self):
        grid = ReferenceGrid(rows=4, cols=4)
        ring = perimeter_reader_positions(grid, per_side=2)
        assert len({tuple(p) for p in ring}) == ring.shape[0]

    def test_invalid_per_side(self):
        with pytest.raises(ConfigurationError):
            perimeter_reader_positions(ReferenceGrid(), per_side=0)


class TestLargeScaleScenario:
    def test_structure(self):
        scenario = large_scale_scenario(
            rows=6, cols=6, n_tracking_tags=5, n_trials=2
        )
        assert scenario.grid.n_tags == 36
        assert len(scenario.tracking_tags) == 5
        for pos in scenario.tracking_tags.values():
            assert scenario.grid.contains(pos)

    def test_tags_deterministic_per_seed(self):
        a = large_scale_scenario(n_tracking_tags=4, tag_seed=9)
        b = large_scale_scenario(n_tracking_tags=4, tag_seed=9)
        assert a.tracking_tags == b.tracking_tags

    @pytest.mark.slow
    def test_vire_beats_landmarc_at_scale(self):
        scenario = large_scale_scenario(
            rows=6,
            cols=6,
            base_environment=env3(),
            n_tracking_tags=6,
            n_trials=5,
        )
        vire = VIREEstimator(
            scenario.grid, VIREConfig(subdivisions=6)  # keep N² moderate
        )
        result = run_scenario(scenario, [LandmarcEstimator(), vire])
        lm = result.by_name("LANDMARC").summary().mean
        vi = result.by_name("VIRE").summary().mean
        assert vi < lm

    @pytest.mark.slow
    def test_interior_error_stable_as_grid_grows(self):
        """VIRE's interior accuracy should not degrade when the sensing
        area grows (per-cell behaviour is local)."""
        errors = {}
        for size in (4, 7):
            scenario = large_scale_scenario(
                rows=size,
                cols=size,
                base_environment=make_clean_environment(),
                n_tracking_tags=6,
                n_trials=3,
            )
            vire = VIREEstimator(scenario.grid, VIREConfig(subdivisions=8))
            result = run_scenario(scenario, [vire])
            errors[size] = result.estimators[0].summary().mean
        assert errors[7] < errors[4] + 0.15
