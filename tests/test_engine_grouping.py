"""Property tests of the grouped interpolation path (`repro.engine.grouping`).

The grouped path's claims, each pinned by a hypothesis property:

* **operator extraction is exact** — ``SparseBilinearOperator.apply``
  is bit-for-bit ``BilinearInterpolator.interpolate`` per lattice, for
  any finite lattice stack (compared as uint64 bit patterns), and its
  explicit CSR form agrees numerically;
* **content keys are collision-free by construction** — keys differ
  whenever the lattice bytes differ (including NaN payloads and the
  ±0.0 sign bit) or the masked flag differs, so two readings with
  different lattice structure can never be merged;
* **grouping is invisible** — batch outcomes are invariant (bitwise)
  under permutation of the batch, and a singleton batch equals the
  scalar call, so no observable behaviour depends on which readings
  happened to share a sub-batch;
* **the block dedup equals the dict dedup** — ``LatticeTable.from_block``
  partitions rows into exactly the byte-equality classes the
  per-reading dict loop produces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import VIREConfig, VIREEstimator, paper_testbed_grid
from repro.core.interpolation import (
    BilinearInterpolator,
    SparseBilinearOperator,
)
from repro.core.virtual_grid import VirtualGrid
from repro.engine import BatchEngine
from repro.engine.grouping import (
    LatticeTable,
    lattice_content_key,
    operator_for,
    reading_content_key,
)

from .test_engine_properties import (
    assert_outcomes_identical,
    batch_strategy,
    config_strategy,
    scalar_outcomes,
)

GRID = paper_testbed_grid()

lattice_values = st.floats(-120.0, 0.0, allow_nan=False, allow_infinity=False)


def virtual_grid_strategy():
    return st.integers(2, 7).map(lambda s: VirtualGrid(GRID, subdivisions=s))


# -- operator extraction ------------------------------------------------------


class TestSparseOperatorBitwise:
    @given(
        virtual_grid_strategy(),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_apply_equals_scalar_interpolate_bitwise(self, vgrid, m, seed):
        rng = np.random.default_rng(seed)
        stack = rng.uniform(-120.0, 0.0, size=(m, GRID.rows, GRID.cols))
        op = SparseBilinearOperator(vgrid)
        scalar = BilinearInterpolator()
        batch = op.apply(stack)
        for i in range(m):
            expected = scalar.interpolate(stack[i], vgrid)
            assert (
                batch[i].view(np.uint64) == expected.view(np.uint64)
            ).all(), "operator diverged from the scalar interpolator"

    @given(virtual_grid_strategy(), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_csr_form_agrees(self, vgrid, seed):
        rng = np.random.default_rng(seed)
        lattice = rng.uniform(-120.0, 0.0, size=(GRID.rows, GRID.cols))
        op = SparseBilinearOperator(vgrid)
        matrix = op.to_scipy_csr()
        assert matrix.shape == (
            vgrid.shape[0] * vgrid.shape[1],
            GRID.rows * GRID.cols,
        )
        via_matrix = (matrix @ lattice.ravel()).reshape(vgrid.shape)
        np.testing.assert_allclose(
            via_matrix, op.apply(lattice[np.newaxis])[0], rtol=1e-12
        )
        # Convexity: each row's four corner weights sum to one.
        np.testing.assert_allclose(
            np.asarray(matrix.sum(axis=1)).ravel(), 1.0, rtol=1e-12
        )

    def test_operator_for_only_linear(self):
        linear = VIREEstimator(GRID, VIREConfig())
        assert isinstance(operator_for(linear), SparseBilinearOperator)
        spline = VIREEstimator(GRID, VIREConfig(interpolation="spline"))
        assert operator_for(spline) is None


# -- content keys -------------------------------------------------------------


class TestContentKeys:
    @given(
        arrays(np.float64, 16, elements=lattice_values),
        arrays(np.float64, 16, elements=lattice_values),
    )
    @settings(max_examples=60, deadline=None)
    def test_keys_differ_unless_bytes_equal(self, a, b):
        same_bytes = a.tobytes() == b.tobytes()
        assert (
            lattice_content_key(a, False) == lattice_content_key(b, False)
        ) == same_bytes

    def test_masked_flag_always_keys_apart(self):
        row = np.linspace(-90.0, -50.0, 16)
        assert lattice_content_key(row, True) != lattice_content_key(row, False)

    def test_nan_payloads_and_zero_signs_stay_distinct(self):
        base = np.zeros(16)
        neg = base.copy()
        neg[3] = -0.0
        assert lattice_content_key(base, False) != lattice_content_key(
            neg, False
        )
        nan1, nan2 = base.copy(), base.copy()
        nan1[0] = np.nan
        nan2[0] = np.uint64(0x7FF8000000000001).view(np.float64)
        assert lattice_content_key(nan1, False) != lattice_content_key(
            nan2, False
        )

    @given(batch_strategy(min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_reading_key_equality_implies_identical_outcomes(self, readings):
        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        outcomes = BatchEngine(est).estimate_outcomes(readings)
        for i, a in enumerate(readings):
            for j, b in enumerate(readings):
                if reading_content_key(a) == reading_content_key(b) and (
                    a.tracking_rssi.tobytes() == b.tracking_rssi.tobytes()
                ):
                    assert_outcomes_identical([outcomes[i]], [outcomes[j]])


# -- grouping invisibility ----------------------------------------------------


class TestGroupingInvisible:
    @given(batch_strategy(max_size=6), config_strategy, st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_batch_order_permutation_invariance(self, readings, config, rnd):
        est = VIREEstimator(GRID, config)
        engine = BatchEngine(est)
        baseline = engine.estimate_outcomes(readings)
        order = list(range(len(readings)))
        rnd.shuffle(order)
        permuted = engine.estimate_outcomes([readings[i] for i in order])
        assert_outcomes_identical([baseline[i] for i in order], permuted)

    @given(batch_strategy(min_size=1, max_size=1), config_strategy)
    @settings(max_examples=40, deadline=None)
    def test_singleton_batch_equals_scalar(self, readings, config):
        est = VIREEstimator(GRID, config)
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)

    @given(batch_strategy(max_size=4, masked=True), config_strategy)
    @settings(max_examples=30, deadline=None)
    def test_masked_batches_identical_too(self, readings, config):
        est = VIREEstimator(GRID, config)
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)


# -- block dedup vs dict dedup ------------------------------------------------


class TestBlockDedup:
    @given(
        st.lists(
            arrays(np.float64, (3, 16), elements=lattice_values),
            min_size=1,
            max_size=6,
        ),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_from_block_partitions_like_the_dict_loop(self, refs, seed):
        from .test_engine_differential import _reading

        rng = np.random.default_rng(seed)
        # Force some cross-reading sharing: duplicate a few rows.
        pool = np.concatenate(refs, axis=0)
        for ref in refs:
            if rng.random() < 0.5:
                ref[rng.integers(ref.shape[0])] = pool[
                    rng.integers(pool.shape[0])
                ]
        readings = [
            _reading(ref, rng.uniform(-90.0, -50.0, ref.shape[0]))
            for ref in refs
        ]
        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))

        blk = LatticeTable.from_block(est, readings)
        assert blk is not None, "plain float64 readings must take the block path"
        table, slot_arrays = blk

        dict_table = LatticeTable(est)
        dict_slots = [dict_table.slots_for(r) for r in readings]

        # Same number of byte-equality classes, and the same partition:
        # two rows share a block slot iff they share a dict slot.
        assert len(table) == len(dict_table)
        flat_block = np.concatenate(slot_arrays)
        flat_dict = np.concatenate(dict_slots)
        for i in range(len(flat_block)):
            same_block = flat_block == flat_block[i]
            same_dict = flat_dict == flat_dict[i]
            assert (same_block == same_dict).all()

    def test_masked_readings_refuse_the_block_path(self):
        from .test_engine_differential import nan_masked_batch

        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        assert LatticeTable.from_block(est, nan_masked_batch(3, 2)) is None

    def test_non_float64_refuses_the_block_path(self):
        from .test_engine_differential import _reading

        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        reading = _reading(
            np.full((4, 16), -60.0), np.full(4, -55.0)
        )
        object.__setattr__(
            reading, "reference_rssi", reading.reference_rssi.astype(np.float32)
        )
        assert LatticeTable.from_block(est, [reading]) is None


# -- non-finite lattices through the grouped routes ---------------------------


class TestNonFiniteLattices:
    """`TrackingReading` validates unmasked refs at construction, so a
    non-finite lattice can only reach the grouped interpolate through a
    bypass-constructed reading — exactly what a future reading type with
    laxer validation would look like. Both dedup routes must then record
    the scalar path's exact `ConfigurationError`, per reading, without
    poisoning the rest of the batch."""

    @staticmethod
    def _bad_reading():
        from .test_engine_differential import _reading

        reading = _reading(np.full((4, 16), -60.0), np.full(4, -55.0))
        ref = reading.reference_rssi.copy()
        ref[1, 5] = np.nan
        object.__setattr__(reading, "reference_rssi", ref)
        return reading

    @staticmethod
    def _good_reading(level: float):
        from .test_engine_differential import _reading

        return _reading(np.full((4, 16), level), np.full(4, level + 4.0))

    def test_block_route_matches_scalar(self):
        from repro.exceptions import ConfigurationError

        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        readings = [self._good_reading(-58.0), self._bad_reading()]
        assert LatticeTable.from_block(est, readings) is not None
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)
        assert isinstance(batch[1], ConfigurationError)

    def test_dict_route_matches_scalar(self):
        from repro.exceptions import ConfigurationError

        from .test_engine_differential import nan_masked_batch

        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        # The masked reading forces from_block to refuse, so the bad
        # lattice takes the per-reading dict loop's plain fast path.
        readings = [
            nan_masked_batch(0, 1)[0],
            self._bad_reading(),
            self._good_reading(-62.0),
        ]
        assert LatticeTable.from_block(est, readings) is None
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)
        assert isinstance(batch[1], ConfigurationError)

    def test_all_errored_batch_matches_scalar(self):
        from .test_engine_differential import _reading

        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        all_dark = _reading(
            np.full((4, 16), np.nan), np.full(4, -55.0), masked=True
        )
        readings = [all_dark, all_dark]
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)
