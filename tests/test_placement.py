"""Tests for reader-placement evaluation and greedy optimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import corner_reader_positions, paper_testbed_grid
from repro.exceptions import ConfigurationError
from repro.experiments.placement import (
    candidate_reader_positions,
    evaluate_placement,
    greedy_reader_placement,
)

from .conftest import make_clean_environment

pytestmark = pytest.mark.slow


class TestCandidates:
    def test_corners_always_present(self, grid):
        cand = candidate_reader_positions(grid, include_edge_midpoints=False)
        corners = corner_reader_positions(grid, margin=1.0)
        assert cand.shape == (4, 2)
        np.testing.assert_allclose(np.sort(cand, axis=0), np.sort(corners, axis=0))

    def test_edge_midpoints_added(self, grid):
        cand = candidate_reader_positions(grid)
        assert cand.shape == (8, 2)

    def test_inset_corners_added(self, grid):
        cand = candidate_reader_positions(grid, include_inset_corners=True)
        assert cand.shape == (12, 2)

    def test_negative_margin_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            candidate_reader_positions(grid, margin_m=-1.0)


class TestEvaluatePlacement:
    def test_corner_layout_scores_well_in_clean_env(self, grid):
        env = make_clean_environment()
        err = evaluate_placement(
            env, grid, corner_reader_positions(grid),
            n_trials=2, validation_per_axis=3,
        )
        assert err < 0.2

    def test_degenerate_colinear_layout_scores_worse(self, grid):
        env = make_clean_environment()
        corners = corner_reader_positions(grid)
        good = evaluate_placement(
            env, grid, corners, n_trials=2, validation_per_axis=3
        )
        # Two readers on the same side: poor geometry along one axis.
        colinear = np.array([[-1.0, -1.0], [0.5, -1.0], [2.5, -1.0], [4.0, -1.0]])
        bad = evaluate_placement(
            env, grid, colinear, n_trials=2, validation_per_axis=3
        )
        assert bad > good

    def test_reader_outside_room_rejected(self, grid):
        env = make_clean_environment()
        layout = np.array([[0.0, 0.0], [100.0, 100.0]])
        with pytest.raises(ConfigurationError, match="outside"):
            evaluate_placement(env, grid, layout, n_trials=1)

    def test_needs_two_readers(self, grid):
        env = make_clean_environment()
        with pytest.raises(ConfigurationError):
            evaluate_placement(env, grid, np.array([[0.0, 0.0]]), n_trials=1)


class TestGreedyPlacement:
    def test_selects_requested_count(self, grid):
        env = make_clean_environment()
        cand = candidate_reader_positions(grid, include_edge_midpoints=False)
        result = greedy_reader_placement(
            env, grid, cand, n_readers=3, n_trials=1
        )
        assert result.selected_positions.shape == (3, 2)
        assert len(result.selected_indices) == 3
        assert len(set(result.selected_indices)) == 3

    def test_error_trace_monotone_improvement(self, grid):
        env = make_clean_environment()
        cand = candidate_reader_positions(grid)
        result = greedy_reader_placement(
            env, grid, cand, n_readers=4, n_trials=1
        )
        # Adding readers should never make the chosen-set error much
        # worse (greedy evaluates and picks the best addition).
        assert result.error_trace[-1] <= result.error_trace[0] + 0.05

    def test_invalid_counts_rejected(self, grid):
        env = make_clean_environment()
        cand = candidate_reader_positions(grid, include_edge_midpoints=False)
        with pytest.raises(ConfigurationError):
            greedy_reader_placement(env, grid, cand, n_readers=1)
        with pytest.raises(ConfigurationError):
            greedy_reader_placement(env, grid, cand, n_readers=9)
