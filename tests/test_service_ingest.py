"""Tests for ingestion: bounded queue, drop-oldest, async pump, streams."""

from __future__ import annotations

import asyncio

import pytest

from repro import MiddlewareServer, build_paper_deployment
from repro.exceptions import ConfigurationError, SimulationError
from repro.hardware.readers import ReadingRecord
from repro.hardware.streams import SimulatorRecordStream
from repro.service import BoundedRecordQueue, IngestionLoop, MetricsRegistry

from .conftest import make_clean_environment


def record(i: int, reader: str = "r0", tag: str = "ref-0") -> ReadingRecord:
    return ReadingRecord(reader_id=reader, tag_id=tag, time_s=float(i),
                         rssi_dbm=-50.0 - i)


class TestBoundedRecordQueue:
    def test_fifo_order(self):
        q = BoundedRecordQueue(capacity=10)
        for i in range(3):
            q.offer(record(i))
        assert [r.time_s for r in q.drain()] == [0.0, 1.0, 2.0]

    def test_drop_oldest_on_overflow(self):
        q = BoundedRecordQueue(capacity=2)
        assert q.offer(record(0)) is True
        assert q.offer(record(1)) is True
        assert q.offer(record(2)) is False  # overflow: record 0 shed
        assert q.dropped == 1
        assert [r.time_s for r in q.drain()] == [1.0, 2.0]

    def test_offer_many_counts_chunk_drops(self):
        q = BoundedRecordQueue(capacity=3)
        drops = q.offer_many(record(i) for i in range(5))
        assert drops == 2
        assert [r.time_s for r in q.drain()] == [2.0, 3.0, 4.0]

    def test_drain_max_items(self):
        q = BoundedRecordQueue(capacity=10)
        q.offer_many(record(i) for i in range(5))
        assert len(q.drain(max_items=2)) == 2
        assert len(q) == 3
        assert q.delivered == 2

    def test_high_watermark(self):
        q = BoundedRecordQueue(capacity=10)
        q.offer_many(record(i) for i in range(4))
        q.drain()
        q.offer(record(9))
        assert q.high_watermark == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedRecordQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            BoundedRecordQueue().drain(max_items=-1)


@pytest.fixture
def middleware() -> MiddlewareServer:
    return MiddlewareServer(
        reader_ids=["r0"], reference_tags={"ref-0": (0.0, 0.0)}
    )


class TestIngestionLoop:
    def test_submit_then_deliver(self, middleware):
        loop = IngestionLoop(BoundedRecordQueue(capacity=8), middleware)
        loop.submit(record(i) for i in range(3))
        assert middleware.records_ingested == 0  # nothing delivered yet
        assert loop.deliver_pending() == 3
        assert middleware.records_ingested == 3

    def test_metrics_wiring(self, middleware):
        metrics = MetricsRegistry()
        loop = IngestionLoop(
            BoundedRecordQueue(capacity=2), middleware, metrics=metrics
        )
        loop.submit(record(i) for i in range(3))
        loop.deliver_pending()
        assert metrics.get("ingest_records_offered_total").value == 3
        assert metrics.get("ingest_records_dropped_total").value == 1
        assert metrics.get("ingest_records_delivered_total").value == 2
        assert metrics.get("ingest_queue_depth").value == 0

    def test_async_run_pumps_source(self, middleware):
        loop = IngestionLoop(BoundedRecordQueue(capacity=16), middleware)

        async def source():
            for i in range(5):
                yield record(i)

        pumped = asyncio.run(loop.run(source()))
        assert pumped == 5
        assert loop.deliver_pending() == 5
        assert middleware.records_ingested == 5


@pytest.fixture
def clean_simulator():
    deployment = build_paper_deployment(
        make_clean_environment(),
        tracking_tags={"asset": (1.5, 1.5)},
        seed=3,
    )
    return deployment.simulator


class TestSimulatorRecordStream:
    def test_diverts_records_from_middleware(self, clean_simulator):
        with SimulatorRecordStream(clean_simulator) as stream:
            records = stream.advance(5.0)
            assert records, "expected beacon traffic in 5 s"
            assert clean_simulator.middleware.records_ingested == 0
        # Sink restored after close: traffic reaches middleware again.
        clean_simulator.run_for(5.0)
        assert clean_simulator.middleware.records_ingested > 0

    def test_iter_chunks_covers_duration_exactly(self, clean_simulator):
        with SimulatorRecordStream(clean_simulator, step_s=0.4) as stream:
            start = clean_simulator.now
            chunks = list(stream.iter_chunks(2.0))
        assert clean_simulator.now == pytest.approx(start + 2.0)
        assert chunks[-1][0] == pytest.approx(start + 2.0)
        total = sum(len(records) for _, records in chunks)
        assert total == stream.records_streamed

    def test_records_are_causal(self, clean_simulator):
        with SimulatorRecordStream(clean_simulator, step_s=0.5) as stream:
            for now_s, records in stream.iter_chunks(3.0):
                assert all(r.time_s <= now_s for r in records)

    def test_single_tap_enforced(self, clean_simulator):
        with SimulatorRecordStream(clean_simulator):
            with pytest.raises(SimulationError):
                SimulatorRecordStream(clean_simulator).__enter__()

    def test_closed_stream_rejects_advance(self, clean_simulator):
        stream = SimulatorRecordStream(clean_simulator)
        with pytest.raises(SimulationError):
            stream.advance(1.0)

    def test_aiter_records_matches_sync(self):
        def build():
            return build_paper_deployment(
                make_clean_environment(),
                tracking_tags={"asset": (1.5, 1.5)},
                seed=11,
            ).simulator

        async def collect(sim):
            out = []
            with SimulatorRecordStream(sim, step_s=0.5) as stream:
                async for rec in stream.aiter_records(4.0):
                    out.append(rec)
            return out

        sync_records = []
        with SimulatorRecordStream(build(), step_s=0.5) as stream:
            for _, records in stream.iter_chunks(4.0):
                sync_records.extend(records)
        async_records = asyncio.run(collect(build()))
        assert async_records == sync_records


class TestQueueAccountingProperty:
    """Property-style: conservation law under interleaved offer/drain.

    For any interleaving of offers and drains, the queue must satisfy
    ``offered == delivered + dropped + len(queue)`` at every step, drain
    in FIFO order among survivors, and never exceed its capacity.
    """

    def test_interleaved_offer_drain_conservation(self):
        import random

        rng = random.Random(1234)
        for capacity in (1, 2, 7, 32):
            q = BoundedRecordQueue(capacity=capacity)
            delivered = []
            seq = 0
            for _ in range(400):
                action = rng.random()
                if action < 0.6:
                    n = rng.randint(1, 5)
                    for _ in range(n):
                        q.offer(record(seq))
                        seq += 1
                elif action < 0.9:
                    delivered.extend(q.drain(max_items=rng.randint(1, 8)))
                else:
                    delivered.extend(q.drain())
                # Conservation at every step.
                assert q.offered == seq
                assert q.offered == q.delivered + q.dropped + len(q)
                assert len(q) <= capacity
                assert q.high_watermark <= capacity
            delivered.extend(q.drain())
            assert q.delivered == len(delivered)
            assert q.offered == q.delivered + q.dropped
            # FIFO among survivors: timestamps strictly increasing.
            times = [r.time_s for r in delivered]
            assert times == sorted(times)
            # Drop-oldest: the final record offered is never shed.
            assert delivered and delivered[-1].time_s == float(seq - 1)

    def test_burst_overflow_sheds_exactly_excess(self):
        q = BoundedRecordQueue(capacity=5)
        for i in range(12):
            q.offer(record(i))
        assert q.dropped == 7
        assert [r.time_s for r in q.drain()] == [7.0, 8.0, 9.0, 10.0, 11.0]
        assert q.offered == 12 and q.delivered == 5

class TestShedNewestOverflow:
    """``overflow="shed_newest"``: refuse arrivals, keep the buffer."""

    def test_shed_newest_refuses_and_keeps_buffer(self):
        q = BoundedRecordQueue(capacity=2, overflow="shed_newest")
        assert q.offer(record(0)) is True
        assert q.offer(record(1)) is True
        assert q.offer(record(2)) is False
        assert q.shed == 1 and q.dropped == 0
        # Unlike drop-oldest, the buffered records survive untouched.
        assert [r.time_s for r in q.drain()] == [0.0, 1.0]

    def test_offer_many_counts_shed(self):
        q = BoundedRecordQueue(capacity=3, overflow="shed_newest")
        overflows = q.offer_many(record(i) for i in range(5))
        assert overflows == 2
        assert q.shed == 2 and q.dropped == 0
        assert [r.time_s for r in q.drain()] == [0.0, 1.0, 2.0]

    def test_conservation_includes_shed(self):
        q = BoundedRecordQueue(capacity=2, overflow="shed_newest")
        delivered = []
        for i in range(6):
            q.offer(record(i))
            if i == 3:
                delivered.extend(q.drain())
            assert q.offered == i + 1
            assert q.offered == q.delivered + q.dropped + q.shed + len(q)
        assert q.dropped == 0 and q.shed > 0

    def test_overflow_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedRecordQueue(capacity=2, overflow="newest-first")

    def test_metrics_count_shed_separately(self, middleware):
        metrics = MetricsRegistry()
        loop = IngestionLoop(
            BoundedRecordQueue(capacity=2, overflow="shed_newest"),
            middleware, metrics=metrics,
        )
        loop.submit(record(i) for i in range(4))
        assert metrics.get("ingest_records_shed_total").value == 2
        assert metrics.get("ingest_records_dropped_total").value == 0
        assert metrics.get("ingest_records_offered_total").value == 4

    def test_service_config_plumbs_overflow_policy(self):
        from repro.service.pipeline import ServiceConfig, ServicePipeline

        deployment = build_paper_deployment(
            make_clean_environment(),
            tracking_tags={"asset": (1.5, 1.5)},
            seed=3,
        )
        assert ServiceConfig().queue_overflow == "drop_oldest"
        pipeline = ServicePipeline(
            deployment.grid,
            deployment.simulator.middleware,
            ServiceConfig(queue_overflow="shed_newest"),
        )
        assert pipeline.queue.overflow == "shed_newest"
        with pytest.raises(ConfigurationError):
            ServicePipeline(
                deployment.grid,
                deployment.simulator.middleware,
                ServiceConfig(queue_overflow="newest-first"),
            )
