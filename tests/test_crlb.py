"""Tests for the Cramér–Rao bound module."""

from __future__ import annotations

import numpy as np
import pytest

from repro import corner_reader_positions, paper_testbed_grid
from repro.analysis.crlb import average_crlb, crlb_map, crlb_point
from repro.exceptions import ConfigurationError


@pytest.fixture
def readers(grid):
    return corner_reader_positions(grid)


class TestCrlbPoint:
    def test_positive_and_finite(self, readers):
        b = crlb_point((1.5, 1.5), readers, gamma=2.0, sigma_db=1.0)
        assert 0 < b < 10
        assert np.isfinite(b)

    def test_scales_linearly_with_sigma(self, readers):
        b1 = crlb_point((1.5, 1.5), readers, gamma=2.0, sigma_db=1.0)
        b2 = crlb_point((1.5, 1.5), readers, gamma=2.0, sigma_db=2.0)
        assert b2 == pytest.approx(2.0 * b1)

    def test_higher_gamma_tightens_bound(self, readers):
        # Steeper path loss = more information per dB of measurement.
        soft = crlb_point((1.5, 1.5), readers, gamma=2.0, sigma_db=1.0)
        steep = crlb_point((1.5, 1.5), readers, gamma=4.0, sigma_db=1.0)
        assert steep == pytest.approx(soft / 2.0)

    def test_more_readers_tighten_bound(self, grid, readers):
        four = crlb_point((1.5, 1.5), readers, gamma=2.0, sigma_db=1.0)
        eight = crlb_point(
            (1.5, 1.5),
            np.vstack([readers, readers + np.array([0.1, 0.0])]),
            gamma=2.0,
            sigma_db=1.0,
        )
        assert eight < four

    def test_symmetric_at_centre(self, readers):
        # Four symmetric corner readers: bound equal at mirrored points.
        a = crlb_point((1.0, 1.0), readers, gamma=2.0, sigma_db=1.0)
        b = crlb_point((2.0, 2.0), readers, gamma=2.0, sigma_db=1.0)
        assert a == pytest.approx(b, rel=1e-9)

    def test_colinear_geometry_rejected(self):
        readers = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        # Query on the same line: all gradients parallel -> singular F.
        with pytest.raises(ConfigurationError):
            crlb_point((3.0, 0.0), readers, gamma=2.0, sigma_db=1.0)

    def test_needs_two_readers(self):
        with pytest.raises(ConfigurationError):
            crlb_point((0.0, 0.0), np.array([[1.0, 1.0]]), gamma=2.0,
                       sigma_db=1.0)

    def test_invalid_parameters(self, readers):
        with pytest.raises(Exception):
            crlb_point((0.0, 0.0), readers, gamma=0.0, sigma_db=1.0)
        with pytest.raises(Exception):
            crlb_point((0.0, 0.0), readers, gamma=2.0, sigma_db=0.0)


class TestCrlbMap:
    def test_shape_and_positivity(self, grid, readers):
        xs, ys, bound = crlb_map(grid, readers, gamma=2.8, sigma_db=1.5,
                                 resolution=5)
        assert bound.shape == (5, 5)
        assert np.all(bound > 0)

    def test_centre_better_than_corner_region(self, grid, readers):
        _, _, bound = crlb_map(grid, readers, gamma=2.8, sigma_db=1.5,
                               resolution=9)
        centre = bound[4, 4]
        # Near a reader the radial information explodes but the tangential
        # direction is weak; the centre balances all four readers.
        assert centre <= bound.max()

    def test_average_consistent_with_map(self, grid, readers):
        _, _, bound = crlb_map(grid, readers, gamma=2.8, sigma_db=1.5,
                               resolution=5)
        avg = average_crlb(grid, readers, gamma=2.8, sigma_db=1.5,
                           resolution=5)
        assert avg == pytest.approx(bound.mean())

    def test_resolution_validated(self, grid, readers):
        with pytest.raises(ConfigurationError):
            crlb_map(grid, readers, gamma=2.0, sigma_db=1.0, resolution=1)


class TestBoundVsEstimators:
    @pytest.mark.slow
    def test_vire_respects_bound_in_matched_channel(self, grid, readers):
        """In the pure log-distance channel with known noise, VIRE's error
        should sit above (but within a small factor of) the CRLB."""
        from repro import VIREConfig, VIREEstimator
        from repro.experiments.measurement import MeasurementSpec, TrialSampler
        from .conftest import make_clean_environment
        import dataclasses

        sigma = 1.0
        env = dataclasses.replace(make_clean_environment(), noise_sigma_db=sigma)
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        n_reads = 4
        errors = []
        for seed in range(6):
            sampler = TrialSampler(
                env, grid, seed=seed, measurement=MeasurementSpec(n_reads=n_reads)
            )
            for pos in [(1.5, 1.5), (2.2, 0.9), (0.8, 2.1)]:
                reading = sampler.reading_for(pos)
                errors.append(vire.estimate(reading).error_to(pos))
        measured_rms = float(np.sqrt(np.mean(np.square(errors))))
        # Effective per-reading sigma after averaging n_reads.
        bound = crlb_point(
            (1.5, 1.5), readers, gamma=2.0,
            sigma_db=sigma / np.sqrt(n_reads),
        )
        assert measured_rms >= bound * 0.8  # no better than physics
        assert measured_rms <= bound * 6.0  # and not wildly above it
