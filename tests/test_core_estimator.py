"""Tests for the VIREEstimator pipeline, config, boundary and irregular
variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BoundaryAwareEstimator,
    IrregularVIREEstimator,
    IrregularVirtualGrid,
    ReferenceGrid,
    VIREConfig,
    VIREEstimator,
    paper_testbed_grid,
)
from repro.core.boundary import is_boundary_estimate
from repro.core.irregular import bilinear_at_points
from repro.exceptions import ConfigurationError, EstimationError, ReadingError
from repro.experiments.measurement import MeasurementSpec, TrialSampler

from .conftest import make_clean_environment, make_reading


def clean_reading_at(position, seed=0):
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=1),
    )
    return sampler.reading_for(position)


class TestVIREConfig:
    def test_defaults_valid(self):
        cfg = VIREConfig()
        assert cfg.subdivisions == 10
        assert cfg.threshold_mode == "adaptive"

    def test_paper_operating_point(self):
        cfg = VIREConfig.paper_operating_point()
        assert cfg.target_total_tags == 900

    def test_with_changes(self):
        cfg = VIREConfig().with_(min_cells=7)
        assert cfg.min_cells == 7
        assert VIREConfig().min_cells == 1  # original untouched

    @pytest.mark.parametrize("kwargs", [
        dict(subdivisions=0),
        dict(interpolation="cubic"),
        dict(threshold_mode="auto"),
        dict(fixed_threshold_db=0.0),
        dict(min_cells=0),
        dict(min_votes=0),
        dict(w1_mode="softmax"),
        dict(connectivity=5),
        dict(empty_fallback="ignore"),
        dict(boundary_extension_cells=-1),
        dict(threshold_margin_db=-0.5),
        dict(target_total_tags=2),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            VIREConfig(**kwargs)


class TestVIREEstimator:
    def test_near_exact_in_clean_channel(self, grid):
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900,
                                              threshold_margin_db=0.0))
        for pos in [(1.5, 1.5), (0.8, 2.3), (2.6, 0.7)]:
            err = vire.estimate(clean_reading_at(pos)).error_to(pos)
            assert err < 0.15, (pos, err)

    def test_estimate_within_virtual_lattice_hull(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        res = vire.estimate(clean_reading_at((1.2, 2.4)))
        xmin, ymin, xmax, ymax = grid.bounds
        assert xmin <= res.x <= xmax
        assert ymin <= res.y <= ymax

    def test_diagnostics_complete(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        diag = vire.estimate(clean_reading_at((1.0, 1.0))).diagnostics
        for key in ("threshold_db", "n_selected", "map_areas",
                    "total_virtual_tags", "selected_fraction"):
            assert key in diag
        assert len(diag["map_areas"]) == 4

    def test_target_total_tags_sizing(self, grid):
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        assert vire.virtual_grid.total_tags == 961

    def test_subdivisions_sizing(self, grid):
        vire = VIREEstimator(grid, VIREConfig(subdivisions=4))
        assert vire.virtual_grid.shape == (13, 13)

    def test_layout_mismatch_rejected(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        other = ReferenceGrid(rows=4, cols=4, spacing_x=2.0)
        sampler = TrialSampler(
            make_clean_environment(), other, seed=0,
            measurement=MeasurementSpec(n_reads=1),
        )
        with pytest.raises(ReadingError, match="grid layout"):
            vire.estimate(sampler.reading_for((1.0, 1.0)))

    def test_fixed_threshold_mode(self, grid):
        vire = VIREEstimator(
            grid,
            VIREConfig(threshold_mode="fixed", fixed_threshold_db=2.0),
        )
        res = vire.estimate(clean_reading_at((1.5, 1.5)))
        assert res.diagnostics["threshold_db"] == 2.0

    def test_error_fallback_raises_on_empty(self, grid):
        vire = VIREEstimator(
            grid,
            VIREConfig(threshold_mode="fixed", fixed_threshold_db=1e-6,
                       empty_fallback="error"),
        )
        with pytest.raises(EstimationError, match="no candidate"):
            vire.estimate(clean_reading_at((1.37, 1.73)))

    def test_relax_fallback_recovers(self, grid):
        vire = VIREEstimator(
            grid,
            VIREConfig(threshold_mode="fixed", fixed_threshold_db=1e-6,
                       empty_fallback="relax"),
        )
        pos = (1.37, 1.73)
        res = vire.estimate(clean_reading_at(pos))
        assert res.diagnostics["fallback"] == "relax"
        assert res.error_to(pos) < 0.3

    def test_landmarc_fallback(self, grid):
        vire = VIREEstimator(
            grid,
            VIREConfig(threshold_mode="fixed", fixed_threshold_db=1e-6,
                       empty_fallback="landmarc"),
        )
        res = vire.estimate(clean_reading_at((1.37, 1.73)))
        assert res.diagnostics["fallback"] == "landmarc"
        assert res.estimator == "VIRE"

    def test_min_votes_relaxation(self, grid):
        strict = VIREEstimator(grid, VIREConfig(min_cells=5))
        majority = VIREEstimator(grid, VIREConfig(min_cells=5, min_votes=3))
        reading = clean_reading_at((2.0, 2.0))
        s_mask = strict.selection_mask(reading)
        m_mask = majority.selection_mask(reading)
        assert m_mask.sum() >= s_mask.sum()

    def test_adaptive_threshold_includes_margin(self, grid):
        tight = VIREEstimator(grid, VIREConfig(threshold_margin_db=0.0))
        wide = VIREEstimator(grid, VIREConfig(threshold_margin_db=2.0))
        reading = clean_reading_at((1.5, 1.5))
        t_thr = tight.estimate(reading).diagnostics["threshold_db"]
        w_thr = wide.estimate(reading).diagnostics["threshold_db"]
        assert w_thr == pytest.approx(t_thr + 2.0)

    def test_selection_mask_matches_estimate_path(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        reading = clean_reading_at((1.1, 0.9))
        mask = vire.selection_mask(reading)
        n_sel = vire.estimate(reading).diagnostics["n_selected"]
        assert mask.sum() == n_sel

    def test_deterministic(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        reading = clean_reading_at((2.2, 1.3))
        p1 = vire.estimate(reading).position
        p2 = vire.estimate(reading).position
        assert p1 == p2

    @pytest.mark.parametrize("kind", ["linear", "polynomial", "spline"])
    def test_all_interpolations_work_end_to_end(self, grid, kind):
        vire = VIREEstimator(grid, VIREConfig(interpolation=kind))
        pos = (1.4, 1.9)
        assert vire.estimate(clean_reading_at(pos)).error_to(pos) < 0.5

    def test_works_with_subset_of_readers(self, grid):
        vire = VIREEstimator(grid, VIREConfig())
        pos = (1.6, 1.6)
        reading = clean_reading_at(pos).subset_readers([0, 1, 2])
        assert vire.estimate(reading).error_to(pos) < 0.5


class TestBoundaryDetection:
    def test_interior_mask_not_boundary(self):
        sel = np.zeros((9, 9), dtype=bool)
        sel[4:6, 4:6] = True
        assert not is_boundary_estimate(sel)

    def test_edge_crowded_mask_is_boundary(self):
        sel = np.zeros((9, 9), dtype=bool)
        sel[0, 2:7] = True
        assert is_boundary_estimate(sel)

    def test_empty_mask_not_boundary(self):
        assert not is_boundary_estimate(np.zeros((5, 5), dtype=bool))

    def test_threshold_parameter(self):
        sel = np.zeros((9, 9), dtype=bool)
        sel[0, 0:3] = True   # 3 ring cells
        sel[4, 4:7] = True   # 3 interior cells
        assert is_boundary_estimate(sel, crowding_threshold=0.5)
        assert not is_boundary_estimate(sel, crowding_threshold=0.6)


class TestBoundaryAwareEstimator:
    def test_interior_tag_unaffected(self, grid):
        aware = BoundaryAwareEstimator(grid, VIREConfig())
        plain = VIREEstimator(grid, VIREConfig())
        reading = clean_reading_at((1.5, 1.5))
        a = aware.estimate(reading)
        assert a.diagnostics["boundary_detected"] is False
        np.testing.assert_allclose(a.position, plain.estimate(reading).position)

    def test_outside_tag_detected_and_improved(self, grid):
        pos = (3.25, 3.2)  # outside the grid, like Tag 9
        reading = clean_reading_at(pos)
        aware = BoundaryAwareEstimator(
            grid, VIREConfig(threshold_margin_db=0.5), extension_cells=1
        )
        plain = VIREEstimator(grid, VIREConfig(threshold_margin_db=0.5))
        res_aware = aware.estimate(reading)
        res_plain = plain.estimate(reading)
        assert res_aware.diagnostics["boundary_detected"] is True
        # The extended lattice can move beyond the hull; plain cannot.
        assert res_aware.error_to(pos) < res_plain.error_to(pos)

    def test_name(self, grid):
        assert BoundaryAwareEstimator(grid).name == "VIRE+boundary"


class TestBilinearAtPoints:
    def test_matches_lattice_interpolator(self, grid):
        from repro.core.interpolation import BilinearInterpolator
        from repro.core.virtual_grid import VirtualGrid

        rng = np.random.default_rng(0)
        lattice = rng.uniform(-90, -50, (4, 4))
        vg = VirtualGrid(grid, subdivisions=3)
        expected = BilinearInterpolator().interpolate(lattice, vg)
        out = bilinear_at_points(lattice, grid, vg.positions())
        np.testing.assert_allclose(out, expected.ravel(), atol=1e-9)

    def test_shape_validation(self, grid):
        with pytest.raises(ConfigurationError):
            bilinear_at_points(np.zeros((3, 3)), grid, np.zeros((1, 2)))


class TestIrregular:
    def test_point_count_with_uniform_subdivision(self, grid):
        ivg = IrregularVirtualGrid(grid, default_subdivisions=4)
        # Uniform n=4 deduplicates to the regular (3*4+1)^2 lattice.
        assert ivg.total_tags == 13 * 13

    def test_per_cell_override_adds_points(self, grid):
        base = IrregularVirtualGrid(grid, default_subdivisions=2)
        finer = IrregularVirtualGrid(
            grid, default_subdivisions=2, cell_subdivisions={(1, 1): 8}
        )
        assert finer.total_tags > base.total_tags

    def test_invalid_cell_index_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            IrregularVirtualGrid(grid, cell_subdivisions={(5, 0): 2})

    def test_estimator_clean_channel(self, grid):
        ivg = IrregularVirtualGrid(
            grid, default_subdivisions=4, cell_subdivisions={(1, 1): 10}
        )
        est = IrregularVIREEstimator(ivg)
        pos = (1.5, 1.5)
        assert est.estimate(clean_reading_at(pos)).error_to(pos) < 0.3

    def test_estimator_agrees_with_regular_when_uniform(self, grid):
        ivg = IrregularVirtualGrid(grid, default_subdivisions=10)
        irregular = IrregularVIREEstimator(ivg, min_cells=1)
        regular = VIREEstimator(
            grid, VIREConfig(subdivisions=10, threshold_margin_db=0.0)
        )
        pos = (2.2, 1.7)
        reading = clean_reading_at(pos)
        e_irr = irregular.estimate(reading).error_to(pos)
        e_reg = regular.estimate(reading).error_to(pos)
        assert abs(e_irr - e_reg) < 0.25

    def test_layout_mismatch_rejected(self, grid):
        other = ReferenceGrid(rows=4, cols=4, spacing_x=2.0)
        est = IrregularVIREEstimator(IrregularVirtualGrid(other))
        with pytest.raises(ReadingError):
            est.estimate(clean_reading_at((1.0, 1.0)))
