"""Golden-value regression tests.

The whole reproduction rests on frozen worlds being deterministic
functions of the seed. These tests pin down concrete numbers for fixed
seeds; if any of them moves, either the RNG stream layout or a model
changed — both require a deliberate decision (and an EXPERIMENTS.md
refresh), not an accidental drive-by.

If a change is intentional, update the constants below and re-run the
figure benches to refresh EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    corner_reader_positions,
    paper_testbed_grid,
)
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.rf import env1, env3


@pytest.fixture(scope="module")
def grid():
    return paper_testbed_grid()


class TestFrozenWorldGolden:
    def test_env3_mean_rssi_golden(self, grid):
        channel = env3().build_channel(corner_reader_positions(grid), seed=0)
        value = channel.mean_rssi_single(0, (1.5, 1.5))
        assert value == pytest.approx(-63.629, abs=0.01)

    def test_env1_mean_rssi_golden(self, grid):
        channel = env1().build_channel(corner_reader_positions(grid), seed=0)
        value = channel.mean_rssi_single(2, (2.0, 1.0))
        assert value == pytest.approx(-60.568, abs=0.01)

    def test_reading_matrix_golden(self, grid):
        sampler = TrialSampler(
            env3(), grid, seed=7, measurement=MeasurementSpec(n_reads=5)
        )
        reading = sampler.reading_for((1.45, 1.55))
        assert reading.tracking_rssi[0] == pytest.approx(-61.025, abs=0.01)
        assert reading.reference_rssi[2, 5] == pytest.approx(-49.154, abs=0.01)

    def test_estimates_golden(self, grid):
        sampler = TrialSampler(
            env3(), grid, seed=7, measurement=MeasurementSpec(n_reads=5)
        )
        reading = sampler.reading_for((1.45, 1.55))
        lm = LandmarcEstimator().estimate(reading)
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900)).estimate(
            reading
        )
        assert lm.position == pytest.approx((1.9468, 1.1118), abs=1e-3)
        assert vire.position == pytest.approx((1.7403, 0.8053), abs=1e-3)


def _refresh_golden() -> None:  # pragma: no cover - developer utility
    """Print the current values for updating the constants above."""
    grid = paper_testbed_grid()
    channel3 = env3().build_channel(corner_reader_positions(grid), seed=0)
    print("env3 mean:", channel3.mean_rssi_single(0, (1.5, 1.5)))
    channel1 = env1().build_channel(corner_reader_positions(grid), seed=0)
    print("env1 mean:", channel1.mean_rssi_single(2, (2.0, 1.0)))
    sampler = TrialSampler(
        env3(), grid, seed=7, measurement=MeasurementSpec(n_reads=5)
    )
    reading = sampler.reading_for((1.45, 1.55))
    print("trk[0]:", reading.tracking_rssi[0])
    print("ref[2,5]:", reading.reference_rssi[2, 5])
    print("landmarc:", LandmarcEstimator().estimate(reading).position)
    print(
        "vire:",
        VIREEstimator(grid, VIREConfig(target_total_tags=900))
        .estimate(reading)
        .position,
    )


if __name__ == "__main__":  # pragma: no cover
    _refresh_golden()
