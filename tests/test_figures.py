"""Tests for the figure regenerators (reduced trial counts for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.sweeps import (
    boundary_compensation_study,
    format_sweep,
    sweep_equipment,
    sweep_grid_spacing,
    sweep_interpolation,
    sweep_reader_count,
    sweep_weighting,
)

pytestmark = pytest.mark.slow


class TestFig2b:
    def test_structure_and_formatting(self):
        r = figures.fig2b(n_trials=3)
        assert set(r.per_env) == {"Env1", "Env2", "Env3"}
        assert set(r.per_env["Env1"]) == set(range(1, 10))
        out = figures.format_fig2b(r)
        assert "Fig. 2(b)" in out

    def test_env3_harder_than_env1(self):
        r = figures.fig2b(n_trials=6)
        avg1 = np.mean(list(r.per_env["Env1"].values()))
        avg3 = np.mean(list(r.per_env["Env3"].values()))
        assert avg3 > avg1


class TestFig3:
    def test_structure(self):
        r = figures.fig3(n_reads=10)
        assert r.distances_m.shape == r.measured_mean.shape
        assert np.all(r.measured_min <= r.measured_mean + 1e-9)
        assert np.all(r.measured_mean <= r.measured_max + 1e-9)

    def test_overall_decreasing_trend(self):
        r = figures.fig3(n_reads=10)
        # Mean over the first quarter well above mean over the last quarter.
        q = len(r.distances_m) // 4
        assert r.measured_mean[:q].mean() > r.measured_mean[-q:].mean() + 10

    def test_formatting(self):
        out = figures.format_fig3(figures.fig3(n_reads=5))
        assert "theoretical" in out


class TestFig4:
    def test_interference_spread_dominates(self):
        r = figures.fig4(n_tags=20)
        assert np.ptp(r.interference_dbm) > 2 * np.ptp(r.independent_dbm)

    def test_tag_count_respected(self):
        r = figures.fig4(n_tags=12)
        assert r.independent_dbm.shape == (12,)

    def test_formatting(self):
        out = figures.format_fig4(figures.fig4(n_tags=5))
        assert "interference" in out


class TestFig6:
    def test_vire_wins_on_average_everywhere(self):
        r = figures.fig6(n_trials=8)
        for env in ("Env1", "Env2", "Env3"):
            lm = np.mean(list(r.landmarc[env].values()))
            vi = np.mean(list(r.vire[env].values()))
            assert vi < lm, env

    def test_reductions_properties(self):
        r = figures.fig6(n_trials=8)
        reds = r.reductions("Env3")
        assert set(reds) == set(range(1, 10))

    def test_non_boundary_average(self):
        r = figures.fig6(n_trials=4)
        avg = r.non_boundary_average("Env1", "VIRE")
        per_tag = [r.vire["Env1"][t] for t in (1, 2, 3, 4, 5)]
        assert avg == pytest.approx(np.mean(per_tag))

    def test_formatting(self):
        out = figures.format_fig6(figures.fig6(n_trials=2))
        assert "VIRE vs LANDMARC" in out
        assert "avg(1-5)" in out


class TestFig7:
    def test_error_decreases_then_flattens(self):
        r = figures.fig7(
            total_tag_targets=(16, 100, 900), n_trials=5
        )
        assert r.mean_error[0] > r.mean_error[1]
        # Beyond the knee the change is small.
        assert abs(r.mean_error[2] - r.mean_error[1]) < 0.5 * (
            r.mean_error[0] - r.mean_error[1]
        )

    def test_totals_reported(self):
        r = figures.fig7(total_tag_targets=(16, 100), n_trials=2)
        assert list(r.total_tags) == [16, 100]

    def test_formatting(self):
        out = figures.format_fig7(
            figures.fig7(total_tag_targets=(16, 100), n_trials=2)
        )
        assert "Fig. 7" in out


class TestFig8:
    def test_u_shape(self):
        r = figures.fig8(
            thresholds_db=(0.25, 2.5, 8.0), n_trials=6
        )
        tiny, mid, huge = r.mean_error
        assert mid < tiny
        assert mid < huge

    def test_formatting(self):
        out = figures.format_fig8(
            figures.fig8(thresholds_db=(1.0, 2.0), n_trials=2)
        )
        assert "threshold" in out


class TestSweeps:
    def test_interpolation_sweep_all_variants(self):
        r = sweep_interpolation(n_trials=3)
        assert set(r.values) == {"linear", "polynomial", "spline"}
        assert all(v > 0 for v in r.values.values())

    def test_reader_count_more_is_better(self):
        r = sweep_reader_count(reader_counts=(2, 4), n_trials=6)
        assert r.values["4 readers"] < r.values["2 readers"]

    def test_grid_spacing_sweep(self):
        r = sweep_grid_spacing(spacing_factors=(1.0, 1.5), n_trials=3)
        assert len(r.values) == 2

    def test_weighting_sweep_variants(self):
        r = sweep_weighting(n_trials=3)
        assert "unweighted" in r.values
        assert "w1 paper-literal + w2" in r.values

    def test_equipment_quantization_hurts(self):
        r = sweep_equipment(n_trials=6)
        assert r.values["8 power levels"] > r.values["direct RSSI"]

    def test_boundary_study_structure(self):
        r = boundary_compensation_study(n_trials=3)
        assert r.plain_boundary > 0
        assert r.compensated_boundary > 0

    def test_format_sweep(self):
        out = format_sweep(sweep_interpolation(n_trials=2))
        assert "interpolation" in out
