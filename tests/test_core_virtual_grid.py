"""Tests for the virtual grid and the interpolation schemes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import ReferenceGrid, VirtualGrid, paper_testbed_grid
from repro.core.interpolation import (
    BilinearInterpolator,
    PolynomialInterpolator,
    SplineInterpolator,
    make_interpolator,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def vgrid(grid):
    return VirtualGrid(grid, subdivisions=10)


class TestVirtualGrid:
    def test_paper_operating_point(self, grid):
        vg = VirtualGrid(grid, subdivisions=10)
        assert vg.shape == (31, 31)
        assert vg.total_tags == 961  # the paper's N² ~ 900 region

    def test_n1_coincides_with_real_grid(self, grid):
        vg = VirtualGrid(grid, subdivisions=1)
        np.testing.assert_allclose(vg.positions(), grid.tag_positions())

    def test_pitch(self, grid):
        vg = VirtualGrid(grid, subdivisions=4)
        assert vg.pitch == (0.25, 0.25)

    def test_positions_cover_grid_bounds(self, vgrid, grid):
        pos = vgrid.positions()
        assert pos[:, 0].min() == pytest.approx(grid.bounds[0])
        assert pos[:, 0].max() == pytest.approx(grid.bounds[2])
        assert pos[:, 1].min() == pytest.approx(grid.bounds[1])
        assert pos[:, 1].max() == pytest.approx(grid.bounds[3])

    def test_real_tag_mask_counts(self, vgrid, grid):
        mask = vgrid.real_tag_mask()
        assert mask.sum() == grid.n_tags

    def test_real_tag_mask_positions(self, grid):
        vg = VirtualGrid(grid, subdivisions=3)
        mask = vg.real_tag_mask()
        pos = vg.positions().reshape(*vg.shape, 2)
        real = pos[mask]
        np.testing.assert_allclose(
            np.sort(real, axis=0), np.sort(grid.tag_positions(), axis=0)
        )

    def test_extension_adds_ring(self, grid):
        vg = VirtualGrid(grid, subdivisions=4, extension_cells=1)
        assert vg.shape == (13 + 8, 13 + 8)
        ys, xs = vg.axis_coordinates()
        assert xs.min() == pytest.approx(-1.0)
        assert xs.max() == pytest.approx(4.0)

    def test_for_target_count_reaches_target(self, grid):
        vg = VirtualGrid.for_target_count(grid, 900)
        assert vg.total_tags >= 900
        smaller = VirtualGrid(grid, vg.subdivisions - 1)
        assert smaller.total_tags < 900

    def test_for_target_count_minimum(self, grid):
        with pytest.raises(ConfigurationError):
            VirtualGrid.for_target_count(grid, 4)

    def test_for_target_count_unreachable(self, grid):
        with pytest.raises(ConfigurationError):
            VirtualGrid.for_target_count(grid, 10**9, max_subdivisions=8)

    def test_rectangular_grid(self):
        g = ReferenceGrid(rows=3, cols=5)
        vg = VirtualGrid(g, subdivisions=2)
        assert vg.shape == (5, 9)

    def test_fractional_indices_align(self, grid):
        vg = VirtualGrid(grid, subdivisions=2)
        fi, fj = vg.fractional_indices()
        np.testing.assert_allclose(fi, np.arange(7) / 2.0)


def _lattice_strategy():
    return arrays(
        np.float64,
        (4, 4),
        elements=st.floats(-100.0, -40.0, allow_nan=False),
    )


class TestBilinear:
    def test_exact_at_real_tags(self, grid):
        rng = np.random.default_rng(0)
        lattice = rng.uniform(-90, -50, (4, 4))
        vg = VirtualGrid(grid, subdivisions=5)
        out = BilinearInterpolator().interpolate(lattice, vg)
        mask = vg.real_tag_mask()
        np.testing.assert_allclose(out[mask], lattice.ravel())

    def test_linear_function_reproduced_exactly(self, grid):
        # A plane a + b*x + c*y is interpolated with zero error everywhere.
        vg = VirtualGrid(grid, subdivisions=7)
        pos = grid.tag_positions()
        plane = (-60.0 + 2.0 * pos[:, 0] - 3.0 * pos[:, 1]).reshape(4, 4)
        out = BilinearInterpolator().interpolate(plane, vg)
        vpos = vg.positions()
        expected = (-60.0 + 2.0 * vpos[:, 0] - 3.0 * vpos[:, 1]).reshape(vg.shape)
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_extension_extrapolates_plane(self, grid):
        vg = VirtualGrid(grid, subdivisions=4, extension_cells=1)
        pos = grid.tag_positions()
        plane = (1.0 * pos[:, 0] + 2.0 * pos[:, 1]).reshape(4, 4)
        out = BilinearInterpolator().interpolate(plane, vg)
        vpos = vg.positions()
        expected = (1.0 * vpos[:, 0] + 2.0 * vpos[:, 1]).reshape(vg.shape)
        np.testing.assert_allclose(out, expected, atol=1e-9)

    @given(_lattice_strategy())
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_cell_corners(self, lattice):
        grid = paper_testbed_grid()
        vg = VirtualGrid(grid, subdivisions=4)
        out = BilinearInterpolator().interpolate(lattice, vg)
        assert out.min() >= lattice.min() - 1e-9
        assert out.max() <= lattice.max() + 1e-9

    def test_matches_paper_1d_formula(self, grid):
        """The paper's horizontal-line formula:
        S(T_pb) = (p*S(a+n,b) + (n+1-p)*S(a,b)) / (n+1) with the paper's
        n+1 subdivisions convention equals bilinear along lattice rows."""
        rng = np.random.default_rng(1)
        lattice = rng.uniform(-90, -50, (4, 4))
        n = 5
        vg = VirtualGrid(grid, subdivisions=n)
        out = BilinearInterpolator().interpolate(lattice, vg)
        # Row 0 of the virtual lattice lies on the real row 0; virtual
        # column j between real cols b and b+1 at fraction q/n.
        for j in range(vg.v_cols):
            b, q = divmod(j, n)
            if b >= 3:
                b, q = 2, n
            expected = lattice[0, b] + (lattice[0, b + 1] - lattice[0, b]) * q / n
            assert out[0, j] == pytest.approx(expected)

    def test_wrong_lattice_shape_rejected(self, grid):
        vg = VirtualGrid(grid, subdivisions=2)
        with pytest.raises(ConfigurationError):
            BilinearInterpolator().interpolate(np.zeros((3, 4)), vg)

    def test_nan_lattice_rejected(self, grid):
        vg = VirtualGrid(grid, subdivisions=2)
        lattice = np.zeros((4, 4))
        lattice[0, 0] = np.nan
        with pytest.raises(ConfigurationError):
            BilinearInterpolator().interpolate(lattice, vg)


class TestPolynomial:
    def test_exact_at_real_tags(self, grid):
        rng = np.random.default_rng(2)
        lattice = rng.uniform(-90, -50, (4, 4))
        vg = VirtualGrid(grid, subdivisions=6)
        out = PolynomialInterpolator().interpolate(lattice, vg)
        mask = vg.real_tag_mask()
        np.testing.assert_allclose(out[mask], lattice.ravel(), atol=1e-8)

    def test_reproduces_cubic_surface(self, grid):
        # Degree-3 separable polynomial data is reproduced exactly.
        vg = VirtualGrid(grid, subdivisions=5)
        idx = np.arange(4.0)
        fi, fj = vg.fractional_indices()
        data = np.outer(idx**3 - idx, 2.0 + idx**2)
        out = PolynomialInterpolator().interpolate(data, vg)
        expected = np.outer(fi**3 - fi, 2.0 + fj**2)
        np.testing.assert_allclose(out, expected, atol=1e-7)

    def test_large_grid_refused(self):
        g = ReferenceGrid(rows=20, cols=20)
        vg = VirtualGrid(g, subdivisions=2)
        with pytest.raises(ConfigurationError, match="unusable"):
            PolynomialInterpolator().interpolate(np.zeros((20, 20)), vg)


class TestSpline:
    def test_exact_at_real_tags(self, grid):
        rng = np.random.default_rng(3)
        lattice = rng.uniform(-90, -50, (4, 4))
        vg = VirtualGrid(grid, subdivisions=6)
        out = SplineInterpolator().interpolate(lattice, vg)
        mask = vg.real_tag_mask()
        np.testing.assert_allclose(out[mask], lattice.ravel(), atol=1e-8)

    def test_degrades_to_linear_on_two_point_axis(self):
        g = ReferenceGrid(rows=2, cols=4)
        vg = VirtualGrid(g, subdivisions=3)
        lattice = np.arange(8.0).reshape(2, 4)
        out = SplineInterpolator().interpolate(lattice, vg)
        bil = BilinearInterpolator().interpolate(lattice, vg)
        # Along the 2-row axis both must be linear; compare a column.
        np.testing.assert_allclose(out[:, 0], bil[:, 0], atol=1e-9)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            SplineInterpolator(degree=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("linear", BilinearInterpolator),
        ("polynomial", PolynomialInterpolator),
        ("spline", SplineInterpolator),
    ])
    def test_factory_dispatch(self, kind, cls):
        assert isinstance(make_interpolator(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_interpolator("nearest")

    @pytest.mark.parametrize("kind", ["linear", "polynomial", "spline"])
    def test_all_schemes_agree_on_plane(self, kind, grid):
        vg = VirtualGrid(grid, subdivisions=4)
        pos = grid.tag_positions()
        plane = (0.5 * pos[:, 0] - 1.5 * pos[:, 1]).reshape(4, 4)
        out = make_interpolator(kind).interpolate(plane, vg)
        vpos = vg.positions()
        expected = (0.5 * vpos[:, 0] - 1.5 * vpos[:, 1]).reshape(vg.shape)
        np.testing.assert_allclose(out, expected, atol=1e-7)
