"""Tests for repro.utils: rng streams, validation, arrays, ascii, parallel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, GeometryError
from repro.utils.arrays import as_point, as_points, distances_to, pairwise_distances
from repro.utils.ascii import (
    bar_chart,
    format_mapping,
    format_table,
    line_chart,
    proximity_map_art,
)
from repro.utils.parallel import compute_chunksize, map_trials, resolve_n_jobs
from repro.utils.rng import derive_rng, derive_seed, rngs_for, spawn_rngs
from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)


class TestRng:
    def test_same_key_same_stream(self):
        a = derive_rng(42, "shadowing", 0).standard_normal(5)
        b = derive_rng(42, "shadowing", 0).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive_rng(42, "shadowing", 0).standard_normal(5)
        b = derive_rng(42, "shadowing", 1).standard_normal(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_streams(self):
        a = derive_rng(1, "x").standard_normal(5)
        b = derive_rng(2, "x").standard_normal(5)
        assert not np.allclose(a, b)

    def test_string_keys_stable(self):
        # CRC32-based key mapping must be stable across calls.
        s1 = derive_seed(7, "fading").entropy
        s2 = derive_seed(7, "fading").entropy
        assert s1 == s2

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(3, 4, "trials")
        assert len(rngs) == 4
        draws = [r.standard_normal(3) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_spawn_rngs_prefix_stable(self):
        # Trial i's stream must not depend on how many trials are spawned.
        few = spawn_rngs(3, 2, "trials")
        many = spawn_rngs(3, 5, "trials")
        np.testing.assert_array_equal(
            few[1].standard_normal(4), many[1].standard_normal(4)
        )

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_rngs_for_labels(self):
        d = rngs_for(5, ["a", "b"])
        assert set(d) == {"a", "b"}


class TestValidation:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf"), "s", True])
    def test_ensure_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_positive(bad, "x")

    def test_ensure_non_negative_zero_ok(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_ensure_non_negative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ensure_non_negative(-0.1, "x")

    def test_ensure_positive_int(self):
        assert ensure_positive_int(3, "k") == 3

    @pytest.mark.parametrize("bad", [0, 2.5, True, "3"])
    def test_ensure_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_positive_int(bad, "k")

    def test_ensure_positive_int_minimum(self):
        assert ensure_positive_int(0, "k", minimum=0) == 0
        with pytest.raises(ConfigurationError):
            ensure_positive_int(1, "k", minimum=2)

    def test_ensure_in_range_inclusive_bounds(self):
        assert ensure_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert ensure_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_ensure_in_range_exclusive(self):
        with pytest.raises(ConfigurationError):
            ensure_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_ensure_finite_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ensure_finite([1.0, np.nan], "arr")

    def test_ensure_finite_returns_float64(self):
        out = ensure_finite([1, 2], "arr")
        assert out.dtype == np.float64


class TestArrays:
    def test_as_point_roundtrip(self):
        np.testing.assert_array_equal(as_point((1, 2)), [1.0, 2.0])

    def test_as_point_rejects_3d(self):
        with pytest.raises(GeometryError):
            as_point((1, 2, 3))

    def test_as_points_promotes_single(self):
        assert as_points((1.0, 2.0)).shape == (1, 2)

    def test_as_points_rejects_nan(self):
        with pytest.raises(GeometryError):
            as_points([[1.0, np.nan]])

    def test_pairwise_against_manual(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [0.0, 2.0], [3.0, 4.0]])
        d = pairwise_distances(a, b)
        assert d.shape == (2, 3)
        assert d[0, 2] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
            min_size=1, max_size=6,
        )
    )
    def test_pairwise_self_diagonal_zero(self, pts):
        arr = np.asarray(pts)
        d = pairwise_distances(arr, arr)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    def test_distances_to_matches_pairwise(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = distances_to(pts, (1.0, 0.0))
        np.testing.assert_allclose(out, [1.0, 1.0])


class TestAscii:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.500" in out

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_bar_chart_scales_to_width(self):
        out = bar_chart(["x", "y"], [1.0, 2.0], width=10)
        assert out.splitlines()[1].count("#") == 10

    def test_bar_chart_handles_zeros(self):
        out = bar_chart(["x"], [0.0])
        assert "#" not in out

    def test_bar_chart_rejects_mismatched(self):
        with pytest.raises(ValueError):
            bar_chart(["x"], [1.0, 2.0])

    def test_line_chart_monotone_data(self):
        out = line_chart([1, 2, 3, 4], [1, 2, 3, 4], height=4, width=8)
        assert "*" in out
        assert "y_max=4.000" in out

    def test_line_chart_empty_safe(self):
        assert "no finite data" in line_chart([], [], title=None) or line_chart([], [])

    def test_proximity_map_art_orientation(self):
        mask = np.zeros((2, 3), dtype=bool)
        mask[0, 0] = True  # bottom-left in grid coordinates
        art = proximity_map_art(mask)
        rows = art.splitlines()
        assert rows[-1][0] == "#"  # rendered at the bottom

    def test_format_mapping_alignment(self):
        out = format_mapping({"a": 1, "long": 2})
        assert "a    :" in out


class TestParallel:
    def test_serial_map_order(self):
        assert map_trials(lambda i: i * i, range(5)) == [0, 1, 4, 9, 16]

    def test_resolve_defaults(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(0) >= 1

    def test_parallel_map_matches_serial(self):
        serial = map_trials(_square, range(6), n_jobs=1)
        parallel = map_trials(_square, range(6), n_jobs=2)
        assert serial == parallel

    def test_rejects_non_int_indices(self):
        with pytest.raises(ConfigurationError):
            map_trials(lambda i: i, ["a"])  # type: ignore[list-item]


class TestChunksize:
    def test_targets_per_worker_chunks(self):
        assert compute_chunksize(1000, 4) == 62  # 1000 // (4*4)
        assert compute_chunksize(1000, 4, per_worker=2) == 125

    def test_floors_at_one(self):
        assert compute_chunksize(3, 8) == 1
        assert compute_chunksize(0, 4) == 1
        assert compute_chunksize(10, 0) == 1

    def test_chunked_dispatch_is_bit_identical_to_serial(self):
        # 32 items over 2 workers → chunksize 4: chunked pickling must not
        # change any per-index result, down to the last float bit.
        indices = range(32)
        serial = map_trials(_seeded_draw, indices, n_jobs=1)
        chunked = map_trials(_seeded_draw, indices, n_jobs=2)
        assert compute_chunksize(32, 2) > 1  # the pool really chunks
        assert chunked == serial  # exact float equality, in order


def _square(i: int) -> int:
    return i * i


def _seeded_draw(i: int) -> tuple[float, float]:
    rng = np.random.default_rng(i)
    return (float(rng.standard_normal()), float(rng.uniform()))
