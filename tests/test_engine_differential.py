"""Differential harness: scalar vs exact-batch vs relaxed-batch tiers.

Three implementations of the same pipeline run the same seeded
workloads side by side:

* the scalar ``VIREEstimator.estimate`` loop — the reference;
* ``BatchEngine(est)`` (exact tier) — must be **bitwise identical** to
  the scalar loop: positions compared as IEEE-754 hex, diagnostics
  compared structurally, failures compared by exception type *and*
  message;
* ``BatchEngine(est, precision="relaxed")`` (float32 tier) — must stay
  within a tolerance bound of the scalar positions while making the
  **same ladder decisions**: the same readings succeed, the same
  readings take the same fallback route, the same readings fail with
  the same exception type and message.

Workloads deliberately cover the regimes the grouped path special-cases:
clean snapshot batches (shared reference object), independent batches
(per-reading references), NaN-masked readings, quorum-trimmed readings
(a fully dark reader row), quarantined-column readings (one reference
tag excised across all readers) and mixed batches with error-provoking
readings interleaved.

The harness also pins the tier *contract*: ``relaxed`` is rejected
wherever byte-stable artifacts are produced (golden fixture builders,
checkpointed sessions, checkpointed zone workers), and unknown
precision strings are rejected at both configuration seams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TrackingReading, VIREConfig, VIREEstimator, paper_testbed_grid
from repro.engine import BatchEngine, EngineConfig
from repro.exceptions import ConfigurationError, ReproError

from .test_engine_properties import (
    assert_outcomes_identical,
    scalar_outcomes,
)

GRID = paper_testbed_grid()
REF_POSITIONS = GRID.tag_positions()
N_TAGS = GRID.n_tags
K = 4

#: Relaxed-tier position tolerance (metres). Observed max-abs error on
#: these workloads is ~8e-7; the bound leaves two orders of magnitude of
#: headroom while still catching any double-rounding or wrong-kernel
#: regression (which shows up at 1e-2+).
RELAXED_TOL = 1e-4


# -- seeded workload builders -------------------------------------------------


def _reading(reference, tracking, masked=False) -> TrackingReading:
    return TrackingReading(
        reference_rssi=np.asarray(reference, dtype=np.float64),
        tracking_rssi=np.asarray(tracking, dtype=np.float64),
        reference_positions=REF_POSITIONS,
        masked=masked,
    )


def _rssi(rng, shape):
    return rng.uniform(-95.0, -45.0, size=shape)


def snapshot_batch(seed: int, t: int = 12) -> list[TrackingReading]:
    """T tags against one shared reference array (the micro-batch case)."""
    rng = np.random.default_rng(seed)
    reference = _rssi(rng, (K, N_TAGS))
    return [_reading(reference, _rssi(rng, K)) for _ in range(t)]


def independent_batch(seed: int, t: int = 12) -> list[TrackingReading]:
    """Every reading its own reference draw (the independent path)."""
    rng = np.random.default_rng(seed)
    return [_reading(_rssi(rng, (K, N_TAGS)), _rssi(rng, K)) for _ in range(t)]


def nan_masked_batch(seed: int, t: int = 10) -> list[TrackingReading]:
    """Masked readings with scattered NaN holes in the reference matrix."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(t):
        reference = _rssi(rng, (K, N_TAGS))
        holes = rng.random((K, N_TAGS)) < 0.15
        reference[holes] = np.nan
        out.append(_reading(reference, _rssi(rng, K), masked=True))
    return out


def quorum_trimmed_batch(seed: int, t: int = 8) -> list[TrackingReading]:
    """Masked readings with one fully dark reader (quorum drops it)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(t):
        reference = _rssi(rng, (K, N_TAGS))
        reference[i % K, :] = np.nan
        out.append(_reading(reference, _rssi(rng, K), masked=True))
    return out


def quarantined_column_batch(seed: int, t: int = 8) -> list[TrackingReading]:
    """Masked readings with one reference tag excised across all readers
    — the shape the calibration quarantine produces."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(t):
        reference = _rssi(rng, (K, N_TAGS))
        reference[:, i % N_TAGS] = np.nan
        out.append(_reading(reference, _rssi(rng, K), masked=True))
    return out


def mixed_batch(seed: int) -> list[TrackingReading]:
    """Every regime interleaved, plus error-provoking readings.

    ``TrackingReading`` itself rejects non-finite/mis-shaped inputs, so
    the error cases reachable at estimate time are a reference-layout
    mismatch (the reading's tag positions are not the estimator's grid)
    and a quorum refusal (every reader dark) — both must come out of
    every tier with the scalar exception type and message, at the same
    batch positions.
    """
    rng = np.random.default_rng(seed)
    shared = _rssi(rng, (K, N_TAGS))
    bad_layout = TrackingReading(
        reference_rssi=_rssi(rng, (K, N_TAGS)),
        tracking_rssi=_rssi(rng, K),
        reference_positions=REF_POSITIONS + 0.37,
    )
    all_dark = _reading(
        np.full((K, N_TAGS), np.nan), _rssi(rng, K), masked=True
    )
    return [
        independent_batch(seed + 1, 2)[0],
        bad_layout,
        _reading(shared, _rssi(rng, K)),
        nan_masked_batch(seed + 2, 1)[0],
        all_dark,
        _reading(shared, _rssi(rng, K)),
        quorum_trimmed_batch(seed + 3, 1)[0],
        quarantined_column_batch(seed + 4, 1)[0],
        independent_batch(seed + 5, 2)[1],
    ]


WORKLOADS = {
    "snapshot": snapshot_batch,
    "independent": independent_batch,
    "nan_masked": nan_masked_batch,
    "quorum_trimmed": quorum_trimmed_batch,
    "quarantined_column": quarantined_column_batch,
    "mixed": mixed_batch,
}

CONFIGS = {
    "adaptive": VIREConfig(),
    "fixed": VIREConfig(threshold_mode="fixed", fixed_threshold_db=2.0),
    "landmarc_fallback": VIREConfig(empty_fallback="landmarc"),
    "paper_literal": VIREConfig(w1_mode="paper-literal", connectivity=8),
    # A tight fixed threshold empties some intersections: batches mix
    # live tags with per-reading EstimationErrors — the ladder's
    # "error" rung exercised inside one vectorized group.
    "error_fallback": VIREConfig(
        threshold_mode="fixed", fixed_threshold_db=0.3, empty_fallback="error"
    ),
}


def _seed(workload: str, config_name: str) -> int:
    """Deterministic per-case seed (``hash`` is randomized per process)."""
    import zlib

    return zlib.crc32(f"{workload}/{config_name}".encode())


def _estimator(config: VIREConfig) -> VIREEstimator:
    return VIREEstimator(GRID, config)


# -- exact tier: bitwise identity --------------------------------------------


class TestExactTierBitwise:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_exact_batch_equals_scalar(self, workload, config_name):
        est = _estimator(CONFIGS[config_name])
        readings = WORKLOADS[workload](seed=_seed(workload, config_name))
        scalar = scalar_outcomes(est, readings)
        batch = BatchEngine(est).estimate_outcomes(readings)
        assert_outcomes_identical(scalar, batch)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_exact_default_engine_route(self, workload):
        """``est.estimate_outcomes`` (the service seam) uses the exact
        grouped path by default and stays bitwise identical too."""
        est = _estimator(CONFIGS["adaptive"])
        readings = WORKLOADS[workload](seed=99)
        scalar = scalar_outcomes(est, readings)
        assert_outcomes_identical(scalar, est.estimate_outcomes(readings))

    def test_estimate_batch_raises_first_scalar_error(self):
        est = _estimator(CONFIGS["adaptive"])
        readings = mixed_batch(seed=7)
        first_error = next(
            o for o in scalar_outcomes(est, readings) if isinstance(o, ReproError)
        )
        with pytest.raises(type(first_error), match=None) as excinfo:
            BatchEngine(est).estimate_batch(readings)
        assert str(excinfo.value) == str(first_error)


# -- relaxed tier: tolerance bounds + identical ladder decisions --------------


def _ladder_decision(outcome):
    """What the degradation ladder decided for one reading."""
    if isinstance(outcome, ReproError):
        return ("error", type(outcome).__name__, str(outcome))
    return ("ok", outcome.diagnostics.get("fallback"))


class TestRelaxedTier:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_relaxed_within_tolerance_same_ladder(self, workload, config_name):
        est = _estimator(CONFIGS[config_name])
        readings = WORKLOADS[workload](seed=_seed(workload, config_name))
        scalar = scalar_outcomes(est, readings)
        relaxed = BatchEngine(est, precision="relaxed").estimate_outcomes(
            readings
        )
        assert len(relaxed) == len(scalar)
        worst = 0.0
        for s, r in zip(scalar, relaxed):
            assert _ladder_decision(r) == _ladder_decision(s)
            if not isinstance(s, ReproError):
                err = max(
                    abs(r.position[0] - s.position[0]),
                    abs(r.position[1] - s.position[1]),
                )
                worst = max(worst, err)
        assert worst <= RELAXED_TOL, (
            f"relaxed tier drifted {worst:.3e} m from the scalar path "
            f"(bound {RELAXED_TOL:.0e})"
        )

    def test_relaxed_actually_runs_float32(self):
        """The tier is not silently falling back to the exact kernels:
        on a generic workload at least one position differs in its low
        bits (while staying inside the tolerance bound)."""
        est = _estimator(CONFIGS["adaptive"])
        readings = independent_batch(seed=5, t=16)
        scalar = [est.estimate(r) for r in readings]
        relaxed = BatchEngine(est, precision="relaxed").estimate_batch(readings)
        assert any(
            s.position[0].hex() != r.position[0].hex()
            or s.position[1].hex() != r.position[1].hex()
            for s, r in zip(scalar, relaxed)
        )

    def test_relaxed_bypasses_interpolation_cache(self):
        """Relaxed must not read or write the float64 surface cache."""
        from repro.service.cache import InterpolationCache

        est = _estimator(CONFIGS["adaptive"])
        cache = InterpolationCache(max_entries=64)
        est.interpolation_cache = cache
        BatchEngine(est, precision="relaxed").estimate_batch(
            independent_batch(seed=11, t=4)
        )
        assert cache.hits == 0 and cache.misses == 0


# -- tier contract: where relaxed is rejected ---------------------------------


class TestPrecisionContract:
    def test_engine_config_rejects_unknown_precision(self):
        with pytest.raises(ConfigurationError, match="precision"):
            EngineConfig(precision="bogus")

    def test_batch_engine_rejects_unknown_precision(self):
        with pytest.raises(ConfigurationError, match="precision"):
            BatchEngine(_estimator(CONFIGS["adaptive"]), precision="fast")

    def test_engine_config_accepts_both_tiers(self):
        assert EngineConfig().precision == "exact"
        assert EngineConfig(precision="relaxed").precision == "relaxed"

    def test_golden_builders_reject_relaxed(self):
        from repro.service.pipeline import ServiceConfig

        from .regen_golden import require_exact_precision

        config = ServiceConfig(engine=EngineConfig(precision="relaxed"))
        with pytest.raises(ConfigurationError, match="golden fixtures"):
            require_exact_precision(config)
        require_exact_precision(ServiceConfig())  # exact passes

    def test_checkpointed_session_rejects_relaxed(self, tmp_path):
        from repro.service.pipeline import ServiceConfig
        from repro.service.session import LocalizationService

        service = LocalizationService(
            ServiceConfig(engine=EngineConfig(precision="relaxed"))
        )
        with pytest.raises(ConfigurationError, match="checkpointed sessions"):
            service.run(
                "Env1", 1.0, checkpoint_path=tmp_path / "ckpt.jsonl"
            )

    def test_checkpointed_zone_worker_rejects_relaxed(self, tmp_path):
        from repro.experiments.scenarios import paper_scenario
        from repro.service.pipeline import ServiceConfig
        from repro.zones import ZoneWorker, single_zone_plan

        plan = single_zone_plan(paper_scenario("Env1", n_trials=1))
        with pytest.raises(ConfigurationError, match="checkpointed zone"):
            ZoneWorker(
                plan.zones[0],
                ServiceConfig(engine=EngineConfig(precision="relaxed")),
                checkpoint_path=tmp_path / "zone.jsonl",
            )

    def test_relaxed_pipeline_routes_through_relaxed_engine(self):
        """The service seam: exact routes through the estimator's own
        engine (monkeypatchable, cache-backed); relaxed substitutes a
        float32 engine."""
        from repro import build_paper_deployment
        from repro.service.pipeline import ServiceConfig, ServicePipeline

        from .conftest import make_clean_environment

        deployment = build_paper_deployment(
            make_clean_environment(), tracking_tags={"a": (1.0, 1.0)}, seed=3
        )
        exact = ServicePipeline(
            deployment.grid, deployment.simulator.middleware, ServiceConfig()
        )
        assert exact._batch_vire is None
        relaxed = ServicePipeline(
            deployment.grid,
            deployment.simulator.middleware,
            ServiceConfig(engine=EngineConfig(precision="relaxed")),
        )
        assert isinstance(relaxed._batch_vire, BatchEngine)
        assert relaxed._batch_vire.precision == "relaxed"
