"""Tests for repro.loadtest.generator: the open-loop harness.

Includes the ingest-overflow regression suite: shed-newest counters,
admission-control rejections and ``repro_gateway_*`` naming conventions
under sustained burst overload.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import VIREConfig
from repro.exceptions import ConfigurationError
from repro.loadtest import LoadProfile, run_load_test
from repro.service import ServiceConfig


def cheap_config(**overrides) -> ServiceConfig:
    return ServiceConfig(vire=VIREConfig(subdivisions=5), **overrides)


def witness_bytes(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


class TestSingleZone:
    def test_rated_load_serves_every_arrival(self):
        p = LoadProfile(name="rated", duration_s=6.0, rate_per_s=4.0, seed=3)
        r = run_load_test(p, config=cheap_config())
        assert r.offered == len(r.schedule) > 0
        assert r.served == r.offered
        assert r.slo["availability"] == 1.0
        assert r.admission == {"admitted": r.offered, "shed": 0}
        assert set(r.zones) == {"z0"}

    def test_same_seed_witness_is_byte_identical(self):
        p = LoadProfile(name="twice", process="burst", duration_s=6.0,
                        rate_per_s=4.0, seed=7)
        a = run_load_test(p, config=cheap_config())
        b = run_load_test(p, config=cheap_config())
        assert witness_bytes(a) == witness_bytes(b)
        assert a.wall_s != b.wall_s or True  # wall time is NOT compared

    def test_wall_clock_never_leaks_into_the_witness(self):
        p = LoadProfile(name="clock", duration_s=4.0, rate_per_s=3.0)
        r = run_load_test(p, config=cheap_config())
        assert "wall" not in witness_bytes(r)
        assert r.wall_document()["wall_s"] == r.wall_s

    def test_witness_is_strict_json(self):
        p = LoadProfile(name="strict", duration_s=4.0, rate_per_s=3.0)
        doc = run_load_test(p, config=cheap_config()).witness_document()
        text = json.dumps(doc, sort_keys=True, allow_nan=False)
        assert json.loads(text) == doc

    def test_capacity_point_has_every_model_feature(self):
        from repro.loadtest.capacity import CAPACITY_FEATURES, CAPACITY_TARGET

        p = LoadProfile(name="feat", duration_s=4.0, rate_per_s=3.0)
        point = run_load_test(p, config=cheap_config()).capacity_point()
        for key in CAPACITY_FEATURES + (CAPACITY_TARGET,):
            assert key in point


class TestOverload:
    """A capped executor under open-loop pressure must degrade visibly."""

    @pytest.fixture(scope="class")
    def overloaded(self):
        p = LoadProfile(name="over", duration_s=12.0, rate_per_s=30.0,
                        seed=5, max_batches_per_tick=1)
        return run_load_test(p, config=cheap_config())

    def test_queue_wait_grows_past_the_deadline(self, overloaded):
        latency = overloaded.slo["latency"]
        assert latency["p99_s"] > 5.0  # default request deadline
        assert latency["p99_s"] > latency["p50_s"]

    def test_deadline_descent_reaches_landmarc(self, overloaded):
        assert overloaded.slo["reasons"].get("deadline", 0) > 0
        assert overloaded.slo["levels"].get("landmarc", 0) > 0
        assert overloaded.slo["degraded_fraction"] > 0.0

    def test_open_loop_offers_do_not_shrink(self, overloaded):
        # The schedule is open-loop: offered load equals the schedule
        # regardless of how slowly the capped executor drains it.
        assert overloaded.offered == 360
        assert overloaded.served == overloaded.offered


class TestIngestOverflowRegressions:
    """Satellite regressions: overflow accounting under burst overload."""

    @pytest.fixture(scope="class")
    def shed_run(self):
        config = cheap_config(queue_capacity=64, queue_overflow="shed_newest")
        p = LoadProfile(name="shedq", process="burst", duration_s=8.0,
                        rate_per_s=4.0, seed=2)
        return run_load_test(p, config=config)

    def test_shed_newest_counts_refused_records(self, shed_run):
        z = shed_run.zones["z0"]
        assert z["records_shed"] > 0
        assert z["records_dropped"] == 0  # shed_newest never drops buffered
        assert z["queue_high_watermark"] == 64

    def test_shed_counter_is_exported_under_the_zone_namespace(self, shed_run):
        registry = shed_run.zone_metrics["z0"]
        counter = registry.get("ingest_records_shed_total")
        assert counter.name == "repro_zone_z0_ingest_records_shed_total"
        assert counter.value == shed_run.zones["z0"]["records_shed"]

    def test_admission_rejections_are_counted(self):
        p = LoadProfile(name="adm", duration_s=8.0, rate_per_s=24.0, seed=5,
                        max_batches_per_tick=1, admission_rate_per_s=18.0,
                        admission_burst=8)
        r = run_load_test(p, config=cheap_config())
        assert r.admission["shed"] > 0
        assert r.admission["admitted"] + r.admission["shed"] == r.offered
        registry = r.zone_metrics["z0"]
        admitted = registry.get("admission_requests_admitted_total")
        shed = registry.get("admission_requests_shed_total")
        assert admitted.name.startswith("repro_zone_z0_")
        assert int(admitted.value) == r.admission["admitted"]
        assert int(shed.value) == r.admission["shed"]

    def test_zone_witness_carries_admission_counters(self):
        p = LoadProfile(name="admw", duration_s=6.0, rate_per_s=20.0, seed=1,
                        admission_rate_per_s=6.0, admission_burst=4)
        r = run_load_test(p, config=cheap_config())
        z = r.zones["z0"]
        assert z["admission_admitted"] + z["admission_shed"] == r.offered
        assert z["admission_shed"] > 0


class TestMultiZone:
    @pytest.fixture(scope="class")
    def multi(self):
        p = LoadProfile(name="multi", duration_s=6.0, rate_per_s=4.0,
                        n_zones=3, seed=4, admission_rate_per_s=20.0)
        return run_load_test(p, config=cheap_config())

    def test_every_zone_reports(self, multi):
        assert set(multi.zones) == {"z0", "z1", "z2"}
        assert multi.served == sum(
            z["results"] for z in multi.zones.values()
        )

    def test_same_seed_witness_is_byte_identical(self, multi):
        p = LoadProfile(name="multi", duration_s=6.0, rate_per_s=4.0,
                        n_zones=3, seed=4, admission_rate_per_s=20.0)
        again = run_load_test(p, config=cheap_config())
        assert witness_bytes(multi) == witness_bytes(again)

    def test_gateway_metrics_follow_the_naming_conventions(self, multi):
        registry = multi.gateway_metrics
        assert registry is not None
        names = [m.name for m in registry]
        assert names
        for metric in registry:
            assert metric.name.startswith("repro_gateway_"), metric.name
            assert not metric.name.startswith("repro_gateway_repro_")
            if metric.kind == "counter":
                assert metric.name.endswith("_total"), metric.name
        assert "repro_gateway_requests_shed_total" in names

    def test_gateway_summary_is_kept(self, multi):
        assert multi.gateway_summary is not None
        assert multi.gateway_summary["zones"] == 3

    def test_admission_totals_aggregate_across_zones(self, multi):
        z_admitted = sum(
            z.get("admission_admitted", 0) for z in multi.zones.values()
        )
        assert multi.admission["admitted"] == z_admitted


class TestScheduledWorkerGuards:
    def test_parallel_gateway_rejects_schedules(self):
        from repro.zones import ZoneGateway, scaled_site_plan

        plan = scaled_site_plan("Env1", 2, seed=0)
        gateway = ZoneGateway(
            plan, cheap_config(),
            query_schedules={"z0": ((1.0, "1"),)},
        )
        with pytest.raises(ConfigurationError, match="serial lockstep"):
            gateway.run(2.0, parallel=True)

    def test_unknown_zone_in_schedules_rejected(self):
        from repro.zones import ZoneGateway, scaled_site_plan

        plan = scaled_site_plan("Env1", 2, seed=0)
        with pytest.raises(ConfigurationError, match="z9"):
            ZoneGateway(
                plan, cheap_config(), query_schedules={"z9": ((1.0, "1"),)}
            )
