"""Unit tests of the observability layer: tracer, trace files, profiling.

The determinism contract under test (see ``docs/OBSERVABILITY.md``):
the *logical* portion of a trace — names, tree structure, attributes,
sim-clock timestamps — is a pure function of the seeded run, while the
wall-clock annotation rides along separately and never leaks into the
logical view.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, EstimationError
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    TraceWriter,
    canonical_logical_json,
    current_tracer,
    diff_documents,
    format_summary,
    ladder_breakdown,
    logical_documents,
    read_trace,
    stage_statistics,
    traced,
    use_tracer,
)
from repro.obs.tracer import to_jsonable


class FakeWall:
    """A deterministic wall clock: each call advances by ``step``."""

    def __init__(self, step=0.010):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(wall_clock=FakeWall())
        with tracer.span("a", x=1):
            with tracer.span("b"):
                pass
            with tracer.span("c", y="z"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "a"
        assert [c.name for c in root.children] == ["b", "c"]
        assert root.attrs == {"x": 1}
        assert tracer.spans_recorded == 3

    def test_sim_clock_stamps_t_and_wall_is_separate(self):
        clock_values = iter([10.0, 10.5, 11.0])
        tracer = Tracer(
            clock=lambda: next(clock_values), wall_clock=FakeWall()
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        assert outer.t == 10.0
        assert outer.children[0].t == 10.5
        assert outer.wall_s > 0
        doc = outer.document()
        assert "wall_s" in doc
        assert "wall_s" not in outer.logical()
        assert "wall_s" not in outer.logical()["children"][0]

    def test_no_clock_omits_t(self):
        tracer = Tracer()
        with tracer.span("solo"):
            pass
        assert "t" not in tracer.roots[0].document()

    def test_set_and_update_coerce_values(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set("arr_scalar", np.float64(2.5))
            span.update(count=np.int64(3), flag=True, name=None)
        attrs = tracer.roots[0].attrs
        assert attrs == {"arr_scalar": 2.5, "count": 3, "flag": True,
                         "name": None}
        assert type(attrs["arr_scalar"]) is float
        assert type(attrs["count"]) is int

    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(EstimationError):
            with tracer.span("failing"):
                raise EstimationError("empty intersection")
        assert tracer.roots[0].attrs["error"] == "EstimationError"

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        a = tracer.span("a")
        tracer.span("b")  # still open
        with pytest.raises(ConfigurationError, match="out of order"):
            a.__exit__(None, None, None)

    def test_event_is_a_leaf_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.event("runtime.retry", task=3, attempt=2)
        (child,) = tracer.roots[0].children
        assert child.name == "runtime.retry"
        assert child.attrs == {"task": 3, "attempt": 2}
        assert not child.children

    def test_sink_receives_only_roots(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in seen] == ["root"]

    def test_metrics_histogram_per_stage(self):
        from repro.service.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry, wall_clock=FakeWall())
        with tracer.span("vire.estimate"):
            pass
        with tracer.span("vire.estimate"):
            pass
        hist = registry.get("obs_stage_vire_estimate_latency_seconds")
        assert hist.count == 2

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in ("x", 3, 2.5, True, None):
            assert to_jsonable(v) == v

    def test_numpy_scalars_become_python(self):
        assert to_jsonable(np.float32(1.5)) == 1.5
        assert to_jsonable(np.bool_(True)) is True

    def test_containers_recurse_and_sets_sort(self):
        out = to_jsonable({"k": (1, np.int64(2)), "s": {"b", "a"}})
        assert out == {"k": [1, 2], "s": ["a", "b"]}

    def test_unknown_objects_stringify(self):
        class Weird:
            def __repr__(self):
                return "Weird()"

        assert to_jsonable(Weird()) == "Weird()"


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_tracer_is_allocation_free_noop(self):
        span = NULL_TRACER.span("anything", huge=list(range(3)))
        with span as s:
            s.set("k", 1)
            s.update(x=2)
        assert NULL_TRACER.span("other") is span  # shared instance
        assert NULL_TRACER.event("e") is None

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with NullTracer().span("x"):
                raise ValueError("must propagate")

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_traced_decorator_resolves_at_call_time(self):
        @traced("stage.work", kind="unit-test")
        def work(x):
            return x * 2

        assert work(3) == 6  # under the null tracer: pure pass-through
        tracer = Tracer()
        with use_tracer(tracer):
            assert work(5) == 10
        assert tracer.roots[0].name == "stage.work"
        assert tracer.roots[0].attrs == {"kind": "unit-test"}


def _record_sample(path):
    """A tiny two-root trace written through the real writer."""
    with TraceWriter(path, meta={"seed": 7, "env": "Env1"}) as writer:
        tracer = Tracer(
            clock=iter([1.0, 1.5, 2.0]).__next__, wall_clock=FakeWall()
        )
        tracer.sink = writer.sink
        with tracer.span("service.tick", tick_s=1.0):
            with tracer.span("service.serve", tag="asset", level=1,
                             estimator="VIRE"):
                pass
        with tracer.span("runtime.snapshot", t_cut=2.0):
            pass
    return writer


class TestTraceFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = _record_sample(path)
        assert writer.spans_written == 2
        header, docs = read_trace(path)
        assert header["format"] == "repro-trace"
        assert header["seed"] == 7
        assert [d["name"] for d in docs] == [
            "service.tick", "runtime.snapshot",
        ]
        assert docs[0]["children"][0]["attrs"]["tag"] == "asset"

    def test_write_after_close_raises(self, tmp_path):
        writer = _record_sample(tmp_path / "t.jsonl")
        span = Tracer(wall_clock=FakeWall()).span("late")
        span.__exit__(None, None, None)
        with pytest.raises(ConfigurationError, match="closed"):
            writer.sink(span)

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot open"):
            TraceWriter(tmp_path / "no-such-dir" / "t.jsonl")

    def test_missing_empty_and_headerless_files(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_trace(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError, match="is empty"):
            read_trace(empty)
        alien = tmp_path / "alien.jsonl"
        alien.write_text('{"hello": "world"}\n')
        with pytest.raises(ConfigurationError, match="not a repro-trace"):
            read_trace(alien)

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _record_sample(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "half-writ')  # crash mid-line
        _, docs = read_trace(path)
        assert [d["name"] for d in docs] == [
            "service.tick", "runtime.snapshot",
        ]

    def test_logical_view_strips_wall_recursively(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _record_sample(path)
        _, docs = read_trace(path)
        flat = json.dumps(logical_documents(docs))
        assert "wall_s" not in flat
        assert '"t"' in flat  # sim time survives

    def test_canonical_json_is_stable_across_recordings(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _record_sample(a)
        _record_sample(b)
        _, docs_a = read_trace(a)
        _, docs_b = read_trace(b)
        # Wall clocks differ call-by-call in real recordings; the fake
        # wall makes them equal here, so force a difference to prove the
        # canonical form ignores it.
        docs_b[0]["wall_s"] = 123.0
        assert canonical_logical_json(docs_a) == canonical_logical_json(docs_b)


class TestDiffDocuments:
    def _docs(self):
        _, docs = (lambda p: (_record_sample(p), read_trace(p))[1])(
            self.tmp_path / "d.jsonl"
        )
        return docs

    @pytest.fixture(autouse=True)
    def _tmp(self, tmp_path):
        self.tmp_path = tmp_path

    def test_identical_traces_agree(self):
        docs = self._docs()
        assert diff_documents(docs, docs) == []

    def test_wall_only_difference_is_invisible_logically(self):
        docs = self._docs()
        other = json.loads(json.dumps(docs))
        other[0]["wall_s"] = 99.0
        assert diff_documents(docs, other) == []
        assert diff_documents(docs, other, logical=False)

    def test_attribute_divergence_is_located_by_path(self):
        docs = self._docs()
        other = json.loads(json.dumps(docs))
        other[0]["children"][0]["attrs"]["level"] = 3
        (diff,) = diff_documents(docs, other)
        assert "[0].children[0].attrs.level" in diff
        assert "A=1" in diff and "B=3" in diff

    def test_root_count_divergence(self):
        docs = self._docs()
        diffs = diff_documents(docs, docs[:1])
        assert any("root span count" in d for d in diffs)

    def test_max_diffs_caps_output(self):
        docs = self._docs()
        other = json.loads(json.dumps(docs))
        for doc in other:
            doc["name"] = "renamed"
            doc.setdefault("attrs", {})["extra"] = 1
        assert len(diff_documents(docs, other, max_diffs=1)) == 1


def _forest():
    """A small hand-built span forest with known timings."""
    return [
        {
            "name": "service.tick", "t": 1.0, "wall_s": 0.10,
            "children": [
                {
                    "name": "service.batch", "wall_s": 0.08,
                    "attrs": {"cache_hits": 3, "cache_misses": 1},
                    "children": [
                        {"name": "service.serve", "wall_s": 0.01,
                         "attrs": {"level": 1, "estimator": "VIRE"}},
                        {"name": "service.serve", "wall_s": 0.02,
                         "attrs": {"level": 3, "estimator": "LANDMARC",
                                   "reason": "quorum_unmet"}},
                        {"name": "service.serve", "wall_s": 0.01,
                         "attrs": {"failed": True, "reason": "no_reading"}},
                    ],
                },
            ],
        },
        {"name": "runtime.snapshot", "wall_s": 0.005},
    ]


class TestProfiling:
    def test_stage_statistics_self_time_excludes_children(self):
        stats = stage_statistics(_forest())
        tick = stats["service.tick"]
        assert tick.count == 1
        assert tick.total_s == pytest.approx(0.10)
        assert tick.self_s == pytest.approx(0.02)  # 0.10 - 0.08 child
        batch = stats["service.batch"]
        assert batch.self_s == pytest.approx(0.08 - 0.04)
        serve = stats["service.serve"]
        assert serve.count == 3
        assert serve.p50_s == pytest.approx(0.01)
        assert serve.max_s == pytest.approx(0.02)

    def test_ladder_breakdown_counts_decisions(self):
        ladder = ladder_breakdown(_forest())
        assert ladder["serves"] == 3
        assert ladder["levels"] == {"1": 1, "3": 1, "?": 1}
        assert ladder["reasons"] == {"no_reading": 1, "quorum_unmet": 1}
        assert ladder["estimators"] == {"LANDMARC": 1, "VIRE": 1}
        assert ladder["cache_hits"] == 3
        assert ladder["cache_misses"] == 1

    def test_format_summary_renders_tables_and_ladder(self):
        text = format_summary({"seed": 7, "env": "Env1"}, _forest(), top=5)
        assert "2 root spans, 6 total" in text
        assert "env=Env1, seed=7" in text
        assert "stage" in text and "service.batch" in text
        assert "ladder breakdown over 3 served requests" in text
        assert "full VIRE" in text and "LANDMARC fallback" in text
        assert "degradation reasons: no_reading=1, quorum_unmet=1" in text
        assert "3 hits / 1 misses (75.0% hit rate)" in text

    def test_summary_without_service_spans_skips_ladder(self):
        text = format_summary({}, [{"name": "vire.estimate", "wall_s": 0.01}])
        assert "ladder breakdown" not in text

    def test_logical_trace_still_summarizes(self):
        """Canonicalized traces (no wall_s) keep counts and structure."""
        stats = stage_statistics(logical_documents(_forest()))
        assert stats["service.serve"].count == 3
        assert stats["service.serve"].total_s == 0.0
