"""Tests for repro.service.metrics: primitives, registry, exposition, logging."""

from __future__ import annotations

import logging
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_service_logger,
    log_event,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        c = Counter("requests_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_rejects_bad_names(self):
        with pytest.raises(ConfigurationError):
            Counter("bad name")
        with pytest.raises(ConfigurationError):
            Counter("9starts_with_digit")
        with pytest.raises(ConfigurationError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(7)
        g.inc(3)
        g.dec(5)
        assert g.value == 5


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['lat_bucket{le="1"}'] == 1
        assert samples['lat_bucket{le="2"}'] == 2
        assert samples['lat_bucket{le="4"}'] == 3
        assert samples['lat_bucket{le="+Inf"}'] == 4
        assert samples["lat_count"] == 4
        assert samples["lat_sum"] == pytest.approx(105.0)

    def test_boundary_lands_in_its_bucket(self):
        # le= semantics: a value equal to the bound belongs to that bucket.
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        samples = dict(h.samples())
        assert samples['lat_bucket{le="1"}'] == 1

    def test_quantiles_exact(self):
        h = Histogram("lat", buckets=(10.0,))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) == 1.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("lat", buckets=(1.0,)).quantile(0.5))

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=())

    def test_rejects_non_finite_observation(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            h.observe(float("nan"))


class TestBucketQuantile:
    """Pins for the bucket-only estimator (within-bucket interpolation).

    Known distribution: 1..100 into decade buckets puts exactly 10
    samples in each bucket, so linear interpolation must recover the
    exact percentiles — the regression these tests guard is the old
    snap-to-upper-bound behaviour (p99 of 1..100 reporting 100).
    """

    @staticmethod
    def _decades() -> Histogram:
        h = Histogram("lat", buckets=tuple(float(b) for b in
                                           range(10, 101, 10)))
        for v in range(1, 101):
            h.observe(float(v))
        return h

    def test_uniform_distribution_percentiles_are_exact(self):
        h = self._decades()
        assert h.bucket_quantile(0.50) == pytest.approx(50.0)
        assert h.bucket_quantile(0.95) == pytest.approx(95.0)
        assert h.bucket_quantile(0.99) == pytest.approx(99.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = self._decades()
        assert h.bucket_quantile(0.05) == pytest.approx(5.0)

    def test_sparse_tail_does_not_snap_to_upper_bound(self):
        # One sample in (0.01, 0.025]: p99 must interpolate inside the
        # bucket, not report the 25 ms bound.
        h = Histogram("lat", buckets=(0.01, 0.025))
        h.observe(0.02)
        p99 = h.bucket_quantile(0.99)
        assert p99 == pytest.approx(0.01 + 0.015 * 0.99)
        assert p99 < 0.025

    def test_overflow_clamps_to_highest_finite_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(5.0)
        assert h.bucket_quantile(0.5) == 1.0

    def test_empty_is_nan_and_range_checked(self):
        h = Histogram("lat", buckets=(1.0,))
        assert math.isnan(h.bucket_quantile(0.5))
        with pytest.raises(ConfigurationError):
            h.bucket_quantile(1.5)

    def test_tracks_exact_quantile_on_dense_data(self):
        # With every bucket well populated the bucket estimate must sit
        # within one bucket width of the exact sample quantile.
        h = self._decades()
        for q in (0.5, 0.9, 0.95, 0.99):
            assert abs(h.bucket_quantile(q) - h.quantile(q)) <= 10.0


class TestRegistry:
    def test_idempotent_creation(self):
        reg = MetricsRegistry("svc")
        c1 = reg.counter("hits_total")
        c2 = reg.counter("hits_total")
        assert c1 is c2

    def test_namespace_prefix(self):
        reg = MetricsRegistry("svc")
        assert reg.counter("hits_total").name == "svc_hits_total"

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total")

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().get("nope")

    def test_metrics_returns_a_defensive_snapshot(self):
        reg = MetricsRegistry("svc")
        counter = reg.counter("hits_total")
        snapshot = reg.metrics()
        assert snapshot == {"svc_hits_total": counter}
        snapshot.clear()  # mutating the copy must not unregister anything
        assert reg.get("hits_total") is counter

    def test_prometheus_rendering(self):
        reg = MetricsRegistry("repro")
        reg.counter("requests_total", "Requests served").inc(3)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.render_prometheus()
        assert "# HELP repro_requests_total Requests served" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "repro_depth 1.5" in text
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_to_dict_histogram_quantiles(self):
        reg = MetricsRegistry("r")
        h = reg.histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        d = reg.to_dict()
        assert d["r_lat"]["count"] == 3
        assert d["r_lat"]["p50"] == 0.2


class TestStructuredLogging:
    def test_log_event_format(self, caplog):
        logger = get_service_logger()
        with caplog.at_level(logging.INFO, logger=logger.name):
            log_event(logger, "batch_flush", size=8, reason="size",
                      note="two words")
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert message.startswith("event=batch_flush ")
        assert "size=8" in message
        assert "reason=size" in message
        assert 'note="two words"' in message

    def test_disabled_logger_skips_formatting(self, caplog):
        logger = get_service_logger()
        with caplog.at_level(logging.ERROR, logger=logger.name):
            log_event(logger, "noisy", level=logging.DEBUG)
        assert not caplog.records


class TestNamingConventions:
    """Regression tests for the metric naming audit.

    Conventions (enforced here so drift fails loudly): every exported
    name carries the ``repro_`` namespace exactly once; counters end in
    ``_total``; histograms and gauges carry a unit/kind suffix
    (``_seconds``, ``_requests``, ``_ratio``, ``_depth``, ...); and
    re-registration — two pipeline components, or a resumed session
    re-creating its pipeline over the same registry — never mints a
    duplicate or a ``repro_repro_*`` name.
    """

    GAUGE_SUFFIXES = ("_ratio", "_depth", "_requests", "_seconds", "_bytes", "_db")
    HISTOGRAM_SUFFIXES = ("_seconds", "_requests", "_bytes")

    @staticmethod
    def _session_registry():
        from tests.regen_golden import run_chaos_session

        return run_chaos_session().metrics

    def test_every_service_metric_follows_the_conventions(self):
        registry = self._session_registry()
        names = [m.name for m in registry]
        assert names, "the chaos session must register metrics"
        for metric in registry:
            name = metric.name
            assert name.startswith("repro_"), name
            assert not name.startswith("repro_repro_"), name
            if metric.kind == "counter":
                assert name.endswith("_total"), name
            elif metric.kind == "histogram":
                assert name.endswith(self.HISTOGRAM_SUFFIXES), name
            else:
                assert metric.kind == "gauge"
                assert not name.endswith("_total"), name
                assert name.endswith(self.GAUGE_SUFFIXES), name

    def test_exposition_has_no_duplicate_type_lines(self):
        registry = self._session_registry()
        text = registry.render_prometheus()
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(set(type_lines))

    def test_prefix_is_applied_exactly_once(self):
        registry = MetricsRegistry()
        plain = registry.counter("service_requests_total")
        # A component re-registering a metric under its *full* name (the
        # session-resume path) must get the same object back, not a
        # repro_repro_* duplicate.
        assert registry.counter("repro_service_requests_total") is plain
        assert [m.name for m in registry] == ["repro_service_requests_total"]

    def test_two_components_share_one_registry_cleanly(self):
        from repro.service.batcher import MicroBatcher

        registry = MetricsRegistry()
        first = MicroBatcher(metrics=registry)
        second = MicroBatcher(metrics=registry)  # e.g. pipeline rebuilt on resume
        assert second is not first
        names = [m.name for m in registry]
        assert len(names) == len(set(names))
        assert "repro_batcher_batch_size_requests" in names

    def test_obs_stage_histograms_join_the_same_namespace(self):
        from repro.obs import Tracer

        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("vire.estimate"):
            pass
        hist = registry.get("obs_stage_vire_estimate_latency_seconds")
        assert hist.name == "repro_obs_stage_vire_estimate_latency_seconds"
        assert hist.name.endswith("_seconds")


class TestCalibrationMetricNaming:
    """The drift corrector's metrics obey the same naming audit."""

    READERS = ("reader-0", "reader-1")
    REFS = ("ref-0", "ref-1", "ref-2", "ref-3")

    def _corrector(self, registry):
        from repro.calibration import DriftCorrector

        return DriftCorrector(self.READERS, self.REFS, metrics=registry)

    def test_registers_the_expected_names(self):
        registry = MetricsRegistry()
        self._corrector(registry)
        by_name = {m.name: m.kind for m in registry}
        assert by_name == {
            "repro_calibration_corrected_readings_total": "counter",
            "repro_calibration_quarantine_transitions_total": "counter",
            "repro_calibration_quarantine_ratio": "gauge",
            "repro_calibration_max_abs_bias_db": "gauge",
            "repro_calibration_bias_reader_0_db": "gauge",
            "repro_calibration_bias_reader_1_db": "gauge",
        }

    def test_names_follow_the_audit_conventions(self):
        registry = MetricsRegistry()
        self._corrector(registry)
        for metric in registry:
            name = metric.name
            assert name.startswith("repro_") and not name.startswith(
                "repro_repro_"
            ), name
            if metric.kind == "counter":
                assert name.endswith("_total"), name
            else:
                assert metric.kind == "gauge"
                assert name.endswith(
                    TestNamingConventions.GAUGE_SUFFIXES
                ), name

    def test_zone_worker_corrector_joins_the_zone_namespace(self):
        registry = MetricsRegistry(zone="z0")
        self._corrector(registry)
        names = {m.name for m in registry}
        assert names == {n for n in names if n.startswith("repro_zone_z0_calibration_")}
        assert "repro_zone_z0_calibration_max_abs_bias_db" in names

    def test_rebuilt_corrector_mints_no_duplicates(self):
        registry = MetricsRegistry()
        first = self._corrector(registry)
        second = self._corrector(registry)  # session resumed over same registry
        assert second is not first
        names = [m.name for m in registry]
        assert len(names) == len(set(names))


class TestZoneNamespace:
    def test_zone_widens_the_namespace(self):
        registry = MetricsRegistry(zone="a")
        counter = registry.counter("service_results_total")
        assert counter.name == "repro_zone_a_service_results_total"
        assert registry.namespace == "repro_zone_a"
        assert registry.zone == "a"

    def test_co_resident_zones_never_collide(self):
        a = MetricsRegistry(zone="a")
        b = MetricsRegistry(zone="b")
        a.counter("service_results_total").inc(3)
        b.counter("service_results_total").inc(7)
        names_a = {m.name for m in a}
        names_b = {m.name for m in b}
        assert not names_a & names_b
        merged = a.render_prometheus() + "\n" + b.render_prometheus()
        assert "repro_zone_a_service_results_total 3" in merged
        assert "repro_zone_b_service_results_total 7" in merged

    def test_full_name_reregistration_stays_idempotent(self):
        registry = MetricsRegistry(zone="a")
        plain = registry.counter("service_requests_total")
        # Re-registering under the already-prefixed name (the resume
        # path) returns the same object, not a zone_a_zone_a duplicate.
        assert (
            registry.counter("repro_zone_a_service_requests_total") is plain
        )
        assert [m.name for m in registry] == [
            "repro_zone_a_service_requests_total"
        ]

    def test_zone_ids_are_sanitized_for_prometheus(self):
        registry = MetricsRegistry(zone="floor-2/east")
        gauge = registry.gauge("service_queue_depth")
        assert gauge.name == "repro_zone_floor_2_east_service_queue_depth"

    def test_unsanitizable_zone_id_is_rejected(self):
        with pytest.raises(ConfigurationError, match="sanitizes to nothing"):
            MetricsRegistry(zone="")

    def test_unzoned_registry_is_unchanged(self):
        registry = MetricsRegistry()
        assert registry.zone is None
        counter = registry.counter("service_requests_total")
        assert counter.name == "repro_service_requests_total"
