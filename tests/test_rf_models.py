"""Tests for interference, disturbance, and quantization models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.rf.disturbance import HumanMovementDisturbance
from repro.rf.interference import TagInterferenceModel
from repro.rf.quantization import PowerLevelQuantizer


class TestInterference:
    def setup_method(self):
        self.model = TagInterferenceModel(
            radius_m=0.5, free_neighbour_count=9,
            saturation_neighbour_count=19,
        )

    def test_sparse_tags_unaffected(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
        np.testing.assert_array_equal(self.model.severity(positions), 0.0)
        rng = np.random.default_rng(0)
        clean = np.full(3, -70.0)
        np.testing.assert_array_equal(
            self.model.corrupt(clean, positions, rng), clean
        )

    def test_ten_close_tags_still_free(self):
        # free_neighbour_count=9 -> 10 tags (9 neighbours each) unaffected.
        rng = np.random.default_rng(0)
        positions = rng.uniform(-0.05, 0.05, (10, 2))
        np.testing.assert_array_equal(self.model.severity(positions), 0.0)

    def test_twenty_packed_tags_saturated(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(-0.05, 0.05, (20, 2))
        np.testing.assert_array_equal(self.model.severity(positions), 1.0)

    def test_neighbour_counts_exclude_self(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0]])
        np.testing.assert_array_equal(
            self.model.neighbour_counts(positions), [1, 1]
        )

    def test_interference_widens_spread(self):
        """The Fig. 4 phenomenon: packed tags spread over tens of dB."""
        rng = np.random.default_rng(42)
        packed = rng.uniform(-0.05, 0.05, (20, 2))
        clean = np.full(20, -75.0)
        corrupted = self.model.corrupt(clean, packed, rng)
        assert np.ptp(corrupted) > 10.0
        assert corrupted.mean() < clean.mean()  # negative-leaning

    def test_offsets_deterministic_per_rng(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        pts = np.random.default_rng(0).uniform(-0.05, 0.05, (15, 2))
        np.testing.assert_array_equal(
            self.model.systematic_offsets_db(pts, rng1),
            self.model.systematic_offsets_db(pts, rng2),
        )

    def test_reading_jitter_shape(self):
        pts = np.random.default_rng(0).uniform(-0.05, 0.05, (12, 2))
        out = self.model.reading_jitter_db(pts, np.random.default_rng(1), n_reads=7)
        assert out.shape == (12, 7)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            TagInterferenceModel(free_neighbour_count=10, saturation_neighbour_count=10)

    def test_corrupt_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model.corrupt(
                np.zeros(3), np.zeros((4, 2)), np.random.default_rng(0)
            )


class TestDisturbance:
    def setup_method(self):
        self.walk = HumanMovementDisturbance(
            waypoints=((0.0, 1.0), (4.0, 1.0)),
            speed_mps=1.0,
            body_radius_m=0.5,
            attenuation_db=10.0,
            start_time_s=5.0,
        )

    def test_path_length_and_end_time(self):
        assert self.walk.path_length_m == pytest.approx(4.0)
        assert self.walk.end_time_s == pytest.approx(9.0)

    def test_not_present_before_start(self):
        assert self.walk.position_at(4.9) is None

    def test_not_present_after_end(self):
        assert self.walk.position_at(9.1) is None

    def test_position_midwalk(self):
        assert self.walk.position_at(7.0) == pytest.approx((2.0, 1.0))

    def test_blocking_link_attenuates_fully(self):
        # Person at (2, 1), link from (2, 0) to (2, 3) passes through them.
        att = self.walk.attenuation_at(7.0, (2.0, 0.0), (2.0, 3.0))
        assert att == pytest.approx(10.0)

    def test_distant_link_unaffected(self):
        att = self.walk.attenuation_at(7.0, (0.0, 3.0), (4.0, 3.0))
        assert att == 0.0

    def test_taper_decreases_with_distance(self):
        # Link parallel to the walk, at increasing lateral offsets.
        a_close = self.walk.attenuation_at(7.0, (2.0, 1.2), (2.0, 3.0))
        a_far = self.walk.attenuation_at(7.0, (2.0, 1.4), (2.0, 3.0))
        assert a_close > a_far > 0.0

    def test_multi_segment_path(self):
        walk = HumanMovementDisturbance(
            waypoints=((0, 0), (1, 0), (1, 2)), speed_mps=1.0
        )
        assert walk.path_length_m == pytest.approx(3.0)
        assert walk.position_at(2.0) == pytest.approx((1.0, 1.0))

    def test_requires_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            HumanMovementDisturbance(waypoints=((0, 0),))


class TestQuantizer:
    def setup_method(self):
        self.q = PowerLevelQuantizer(
            strongest_dbm=-55.0, weakest_dbm=-95.0, n_levels=8
        )

    def test_bin_width(self):
        assert self.q.bin_width_db == pytest.approx(5.0)

    def test_strong_signal_level_one(self):
        assert self.q.to_level(-50.0) == 1
        assert self.q.to_level(-56.0) == 1

    def test_weak_signal_max_level(self):
        assert self.q.to_level(-100.0) == 8
        assert self.q.to_level(-94.9) == 8

    def test_levels_monotone_in_rssi(self):
        rssi = np.linspace(-100, -50, 60)
        levels = self.q.to_level(rssi)
        assert np.all(np.diff(levels) <= 0)  # weaker -> higher level

    def test_to_rssi_bin_centres(self):
        assert self.q.to_rssi(1) == pytest.approx(-57.5)
        assert self.q.to_rssi(8) == pytest.approx(-92.5)

    def test_to_rssi_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            self.q.to_rssi(0)
        with pytest.raises(ConfigurationError):
            self.q.to_rssi(9)

    @given(st.floats(-120, -40))
    def test_roundtrip_error_bounded_by_bin(self, rssi):
        out = float(self.q.roundtrip(rssi))
        if -95.0 <= rssi <= -55.0:
            assert abs(out - rssi) <= self.q.bin_width_db / 2 + 1e-9

    def test_roundtrip_idempotent(self):
        rssi = np.linspace(-100, -50, 23)
        once = self.q.roundtrip(rssi)
        twice = self.q.roundtrip(once)
        np.testing.assert_allclose(once, twice)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PowerLevelQuantizer(strongest_dbm=-90.0, weakest_dbm=-60.0)
        with pytest.raises(ConfigurationError):
            PowerLevelQuantizer(n_levels=1)
