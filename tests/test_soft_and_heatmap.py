"""Tests for SoftVIRE and the spatial error map."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LandmarcEstimator,
    SoftVIREEstimator,
    ReferenceGrid,
    TrackingReading,
    VIREConfig,
    VIREEstimator,
    paper_scenario,
    paper_testbed_grid,
    run_scenario,
)
from repro.analysis import format_heatmap, spatial_error_map
from repro.exceptions import ConfigurationError, ReadingError
from repro.experiments.measurement import MeasurementSpec, TrialSampler

from .conftest import make_clean_environment


def clean_reading_at(position, seed=0):
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=1),
    )
    return sampler.reading_for(position)


class TestSoftVIRE:
    def test_accurate_in_clean_channel(self, grid):
        soft = SoftVIREEstimator(grid, sigma_db=1.0)
        for pos in [(1.5, 1.5), (0.7, 2.2)]:
            err = soft.estimate(clean_reading_at(pos)).error_to(pos)
            assert err < 0.2, pos

    def test_small_sigma_sharpens_support(self, grid):
        reading = clean_reading_at((1.4, 1.6))
        sharp = SoftVIREEstimator(grid, sigma_db=0.5).estimate(reading)
        blunt = SoftVIREEstimator(grid, sigma_db=8.0).estimate(reading)
        assert (
            sharp.diagnostics["effective_support_cells"]
            < blunt.diagnostics["effective_support_cells"]
        )

    def test_huge_sigma_approaches_lattice_centroid(self, grid):
        reading = clean_reading_at((0.5, 0.5))
        res = SoftVIREEstimator(grid, sigma_db=1000.0).estimate(reading)
        assert res.position == pytest.approx((1.5, 1.5), abs=0.05)

    def test_never_empty_failure_mode(self, grid):
        # Arbitrarily inconsistent readings still yield a finite estimate.
        reading = TrackingReading(
            reference_rssi=np.full((4, 16), -90.0),
            tracking_rssi=np.full(4, -40.0),
            reference_positions=grid.tag_positions(),
        )
        res = SoftVIREEstimator(grid).estimate(reading)
        assert np.isfinite(res.x) and np.isfinite(res.y)

    def test_layout_checked(self, grid):
        other = ReferenceGrid(rows=4, cols=4, spacing_x=2.0)
        soft = SoftVIREEstimator(other)
        with pytest.raises(ReadingError):
            soft.estimate(clean_reading_at((1.0, 1.0)))

    def test_invalid_sigma(self, grid):
        with pytest.raises(Exception):
            SoftVIREEstimator(grid, sigma_db=0.0)

    @pytest.mark.slow
    def test_competitive_with_classic_vire_env3(self, grid):
        scenario = paper_scenario("Env3", n_trials=8)
        classic = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        soft = SoftVIREEstimator(grid, sigma_db=2.5)
        result = run_scenario(scenario, [classic, soft])
        classic_err = result.by_name("VIRE").summary().mean
        soft_err = result.by_name("SoftVIRE").summary().mean
        # Within 25% of each other — both implement the same idea.
        assert soft_err < classic_err * 1.25


class TestSpatialErrorMap:
    def test_structure(self, grid):
        env = make_clean_environment()
        emap = spatial_error_map(
            env, grid, LandmarcEstimator(), resolution=4, n_trials=1,
            n_reads=2,
        )
        assert emap.mean_error.shape == (4, 4)
        assert np.all(emap.mean_error >= 0)
        assert emap.estimator_name == "LANDMARC"

    def test_pad_extends_axes(self, grid):
        env = make_clean_environment()
        emap = spatial_error_map(
            env, grid, LandmarcEstimator(), resolution=3, n_trials=1,
            n_reads=1, pad_m=0.5,
        )
        assert emap.xs[0] == pytest.approx(-0.5)
        assert emap.xs[-1] == pytest.approx(3.5)

    def test_worst_lookup(self, grid):
        env = make_clean_environment()
        emap = spatial_error_map(
            env, grid, LandmarcEstimator(), resolution=3, n_trials=1,
            n_reads=1,
        )
        worst_err, worst_pos = emap.worst
        assert worst_err == pytest.approx(emap.mean_error.max())
        assert grid.contains(worst_pos, pad=0.01)

    def test_formatting(self, grid):
        env = make_clean_environment()
        emap = spatial_error_map(
            env, grid, LandmarcEstimator(), resolution=3, n_trials=1,
            n_reads=1,
        )
        art = format_heatmap(emap)
        assert "worst:" in art
        assert art.count("|") >= 6  # 3 rows framed

    def test_resolution_validated(self, grid):
        with pytest.raises(ConfigurationError):
            spatial_error_map(
                make_clean_environment(), grid, LandmarcEstimator(),
                resolution=1,
            )
