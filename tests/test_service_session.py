"""End-to-end tests for LocalizationService sessions.

The claims under test:

1. A streamed session (records delivered via the async ingestion loop)
   produces *exactly* the estimates the batch path would compute from an
   identically-seeded world — the service machinery (queueing, batching,
   caching) must be invisible to the math.
2. Caching changes throughput, never answers.
3. An engineered empty-intersection scenario degrades gracefully for a
   whole session: every answer is a flagged LANDMARC result, nothing
   raises.
"""

from __future__ import annotations

import pytest

from repro import VIREConfig, VIREEstimator, build_paper_deployment
from repro.cli import main
from repro.exceptions import SimulationError
from repro.service import LocalizationService, ServiceConfig, SessionReport

from .conftest import make_clean_environment

TRACKING = {"asset": (1.3, 1.7), "cart": (2.4, 0.9)}


def make_scenario_deployment(seed: int):
    return build_paper_deployment(
        make_clean_environment(),
        tracking_tags={f"tag-{label}": pos for label, pos in TRACKING.items()},
        seed=seed,
    )


def service_config(**changes) -> ServiceConfig:
    base = ServiceConfig(
        max_batch_size=4,
        max_latency_s=0.5,
        request_deadline_s=None,
        query_interval_s=1.0,
        stream_step_s=0.5,
        vire=VIREConfig(subdivisions=5),
    )
    return base.with_(**changes) if changes else base


class StubScenario:
    """Minimal scenario stand-in: the service reads only tracking_tags."""

    name = "stub"
    tracking_tags = TRACKING


class SessionService(LocalizationService):
    """LocalizationService bound to a deterministic stub deployment."""

    def __init__(self, seed: int, config: ServiceConfig):
        super().__init__(config)
        self._seed = seed

    def build_deployment(self, scenario):  # noqa: ARG002 - fixed world
        return make_scenario_deployment(self._seed)


class TestStreamedMatchesBatch:
    def test_streamed_estimates_match_batch_path_exactly(self):
        config = service_config()
        service = SessionService(seed=21, config=config)
        report = service.run(StubScenario(), duration_s=6.0)
        assert report.results, "session produced no results"

        # Twin world: identical seed, records delivered the ordinary way
        # (straight into the middleware, no queue, no batcher, no cache).
        twin = make_scenario_deployment(21)
        estimator = VIREEstimator(
            twin.grid, config.vire.with_(empty_fallback="error")
        )
        for result in sorted(report.results, key=lambda r: r.completed_at_s):
            if result.degraded:
                continue
            dt = result.completed_at_s - twin.simulator.now
            if dt > 0:
                twin.simulator.run_for(dt)
            reading = twin.simulator.middleware.snapshot(
                result.tag_id, result.completed_at_s
            )
            expected = estimator.estimate(reading)
            assert result.position == expected.position  # bitwise equality

    def test_report_summary_shape(self):
        service = SessionService(seed=21, config=service_config())
        report = service.run(StubScenario(), duration_s=4.0)
        assert isinstance(report, SessionReport)
        summary = report.summary
        assert summary["results"] == len(report.results)
        assert summary["session_duration_s"] == pytest.approx(4.0)
        assert summary["records_streamed"] > 0
        assert summary["localizations_per_s"] > 0
        assert report.errors_m, "expected per-result errors vs ground truth"
        assert report.mean_error_m < 2.0
        assert "repro_service_results_total" in report.render_prometheus()

    def test_on_result_callback_sees_every_result(self):
        service = SessionService(seed=7, config=service_config())
        seen = []
        report = service.run(StubScenario(), duration_s=4.0,
                             on_result=seen.append)
        assert seen == list(report.results)


class TestCacheEquivalence:
    def test_cache_on_off_sessions_bitwise_identical(self):
        on = SessionService(
            seed=13, config=service_config(cache_enabled=True)
        ).run(StubScenario(), duration_s=6.0)
        off = SessionService(
            seed=13, config=service_config(cache_enabled=False)
        ).run(StubScenario(), duration_s=6.0)
        assert len(on.results) == len(off.results)
        assert on.summary["cache_hits"] > 0
        assert off.summary["cache_hits"] == 0
        for a, b in zip(on.results, off.results):
            assert a.tag_id == b.tag_id
            assert a.position == b.position  # exact float equality
            assert a.estimator == b.estimator


class TestDegradedSession:
    def test_empty_intersection_session_never_raises(self):
        config = service_config(
            vire=VIREConfig(
                subdivisions=5,
                threshold_mode="fixed",
                fixed_threshold_db=1e-9,
            ),
        )
        report = SessionService(seed=3, config=config).run(
            StubScenario(), duration_s=4.0
        )
        assert report.results, "degraded session still answers"
        for result in report.results:
            assert result.degraded
            assert result.reason == "empty_intersection"
            assert result.estimator == "LANDMARC"
        assert report.summary["degraded_fraction"] == 1.0


class TestWarmupFailure:
    def test_no_warmup_budget_raises_simulation_error(self):
        service = SessionService(seed=1, config=service_config())
        service.warmup_max_s = 0.0  # no time to achieve coverage
        with pytest.raises(SimulationError):
            service.run(StubScenario(), duration_s=1.0)


class TestServeCLI:
    def test_serve_command_prints_acceptance_lines(self, capsys):
        rc = main(
            ["serve", "--duration", "4", "--seed", "0",
             "--query-interval", "1.0", "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for needle in (
            "cache hit rate",
            "batches flushed",
            "degraded requests",
            "latency p50",
            "latency p99",
        ):
            assert needle in out, f"missing {needle!r} in serve output"

    def test_serve_prometheus_flag(self, capsys):
        rc = main(
            ["serve", "--duration", "2", "--seed", "1", "--quiet",
             "--prometheus"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out
