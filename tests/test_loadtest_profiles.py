"""Tests for repro.loadtest.profiles: deterministic arrival schedules."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import (
    ARRIVAL_PROCESSES,
    PRESET_PROFILES,
    LoadProfile,
    generate_schedule,
    preset_profile,
)


class TestLoadProfile:
    def test_defaults_are_valid(self):
        p = LoadProfile()
        assert p.process in ARRIVAL_PROCESSES
        assert p.zone_ids() == ("z0",)

    def test_zone_ids_scale(self):
        assert LoadProfile(n_zones=3).zone_ids() == ("z0", "z1", "z2")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"process": "fractal"},
            {"n_zones": 0},
            {"duration_s": 0.0},
            {"rate_per_s": -1.0},
            {"burst_factor": 0.5},
            {"burst_duty": 1.5},
            {"max_batches_per_tick": 0},
            {"admission_rate_per_s": 0.0},
            {"environment": "Env9"},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadProfile(**kwargs)

    def test_with_returns_updated_copy(self):
        p = LoadProfile()
        q = p.with_(rate_per_s=9.0, n_zones=2)
        assert q.rate_per_s == 9.0 and q.n_zones == 2
        assert p.rate_per_s != 9.0  # original untouched

    def test_canonical_document_roundtrips_as_json(self):
        doc = LoadProfile(process="burst").canonical_document()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_presets_cover_every_process(self):
        assert {p.process for p in PRESET_PROFILES.values()} == set(
            ARRIVAL_PROCESSES
        )
        with pytest.raises(ConfigurationError):
            preset_profile("nope")


class TestGenerateSchedule:
    def test_events_sorted_and_inside_horizon(self):
        p = LoadProfile(process="poisson", duration_s=20.0, rate_per_s=6.0,
                        n_zones=2, seed=4)
        schedule = generate_schedule(p)
        assert len(schedule) > 0
        times = [t for t, _, _ in schedule.events]
        assert times == sorted(times)
        assert all(0.0 < t <= p.duration_s for t in times)
        assert {z for _, z, _ in schedule.events} == {"z0", "z1"}

    def test_uniform_rate_is_exact(self):
        p = LoadProfile(process="uniform", duration_s=10.0, rate_per_s=5.0)
        assert len(generate_schedule(p)) == 50

    def test_poisson_rate_is_approximate(self):
        p = LoadProfile(process="poisson", duration_s=200.0, rate_per_s=5.0,
                        seed=1)
        n = len(generate_schedule(p))
        assert 800 < n < 1200  # mean 1000, sd ~32

    def test_burst_concentrates_arrivals_in_the_duty_window(self):
        p = LoadProfile(process="burst", duration_s=32.0, rate_per_s=8.0,
                        burst_period_s=8.0, burst_duty=0.25,
                        burst_factor=6.0, seed=2)
        schedule = generate_schedule(p)
        in_burst = sum(
            1 for t, _, _ in schedule.events
            if (t % p.burst_period_s) < p.burst_duty * p.burst_period_s
        )
        assert in_burst > 0.6 * len(schedule)

    def test_same_seed_same_schedule(self):
        p = LoadProfile(process="burst", seed=9)
        a, b = generate_schedule(p), generate_schedule(p)
        assert a.events == b.events
        assert a.digest() == b.digest()

    def test_different_seed_different_schedule(self):
        a = generate_schedule(LoadProfile(process="poisson", seed=1))
        b = generate_schedule(LoadProfile(process="poisson", seed=2))
        assert a.events != b.events

    def test_zone_streams_are_independent(self):
        # Adding zones must not perturb z0's arrivals: each zone draws
        # from its own derived RNG stream.
        one = generate_schedule(LoadProfile(process="poisson", seed=7))
        three = generate_schedule(
            LoadProfile(process="poisson", seed=7, n_zones=3)
        )
        assert three.for_zone("z0") == one.for_zone("z0")

    def test_for_zone_unknown_raises(self):
        schedule = generate_schedule(LoadProfile())
        with pytest.raises(ConfigurationError):
            schedule.for_zone("z9")

    def test_offered_by_zone_sums_to_total(self):
        schedule = generate_schedule(LoadProfile(n_zones=3, seed=3))
        offered = schedule.offered_by_zone()
        assert sum(offered.values()) == len(schedule)

    def test_labels_come_from_the_paper_testbed(self):
        schedule = generate_schedule(LoadProfile(seed=5))
        labels = {label for _, _, label in schedule.events}
        assert labels <= {str(i) for i in range(1, 10)}

    def test_canonical_document_is_byte_stable(self):
        p = LoadProfile(process="burst", seed=6)
        a = json.dumps(generate_schedule(p).canonical_document(),
                       sort_keys=True)
        b = json.dumps(generate_schedule(p).canonical_document(),
                       sort_keys=True)
        assert a == b
