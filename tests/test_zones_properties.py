"""Property test: a non-interfering zone partition is a no-op.

The shared-nothing claim, stated as a property: for any site seed and
duration, running N zones together through the gateway produces — zone
by zone — exactly the witness each zone's spec produces when run alone.
Partitioning a deployment (without roaming tags crossing boundaries)
must never change any zone's answers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.pipeline import ServiceConfig
from repro.zones import ZoneGateway, ZoneWorker, scaled_site_plan

pytestmark = pytest.mark.slow


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


class TestPartitionIsANoOp:
    @given(
        seed=st.integers(0, 2**31 - 1),
        duration_s=st.sampled_from([3.0, 4.0, 5.0]),
    )
    @settings(max_examples=3, deadline=None)
    def test_zones_run_together_equal_zones_run_alone(
        self, seed, duration_s
    ):
        config = ServiceConfig(query_interval_s=1.0)
        plan = scaled_site_plan("Env1", 2, seed=seed)
        combined = ZoneGateway(plan, config).run(duration_s)
        for spec in plan:
            alone = ZoneWorker(spec, config).run(duration_s)
            assert _witness(combined.zones[spec.zone_id]) == _witness(alone)
