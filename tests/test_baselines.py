"""Tests for the baseline estimators (LANDMARC and friends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import corner_reader_positions, paper_testbed_grid
from repro.baselines import (
    LandmarcEstimator,
    NearestReferenceEstimator,
    TriangulationLandmarcEstimator,
    WeightedCentroidEstimator,
    WeightedKnnEstimator,
)
from repro.baselines.landmarc import rssi_space_distances
from repro.exceptions import ConfigurationError

from .conftest import make_clean_environment, make_reading
from repro.experiments.measurement import MeasurementSpec, TrialSampler


def clean_reading_at(position, seed=0):
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=1),
    )
    return sampler.reading_for(position)


class TestRssiSpaceDistances:
    def test_zero_for_matching_column(self):
        ref = np.full((4, 16), -70.0)
        ref[:, 3] = -60.0
        reading = make_reading(ref, np.full(4, -60.0))
        e = rssi_space_distances(reading)
        assert e[3] == 0.0
        assert np.all(e[np.arange(16) != 3] > 0)

    def test_euclidean_value(self):
        ref = np.zeros((2, 1))
        reading = make_reading(
            np.array([[-60.0], [-70.0]]), np.array([-63.0, -74.0]),
            grid=None,
        ) if False else None
        # Direct construction with one reference tag:
        from repro.types import TrackingReading

        r = TrackingReading(
            reference_rssi=np.array([[-60.0], [-70.0]]),
            tracking_rssi=np.array([-63.0, -74.0]),
            reference_positions=np.array([[0.0, 0.0]]),
        )
        assert rssi_space_distances(r)[0] == pytest.approx(5.0)


class TestLandmarc:
    def test_exact_match_snaps_to_reference(self):
        ref = np.full((4, 16), -70.0)
        ref[:, 5] = -60.0
        reading = make_reading(ref, np.full(4, -60.0))
        result = LandmarcEstimator().estimate(reading)
        np.testing.assert_allclose(
            result.position, reading.reference_positions[5]
        )
        assert result.diagnostics["exact_match"] is True

    def test_estimate_in_convex_hull_of_neighbours(self):
        reading = clean_reading_at((1.3, 1.7))
        result = LandmarcEstimator().estimate(reading)
        neighbours = result.diagnostics["neighbours"]
        hull_pts = reading.reference_positions[neighbours]
        assert hull_pts[:, 0].min() - 1e-9 <= result.x <= hull_pts[:, 0].max() + 1e-9
        assert hull_pts[:, 1].min() - 1e-9 <= result.y <= hull_pts[:, 1].max() + 1e-9

    def test_clean_channel_good_accuracy(self):
        # In the ideal channel LANDMARC should be decimetre-accurate.
        for pos in [(1.3, 1.7), (0.7, 2.2), (2.4, 0.9)]:
            reading = clean_reading_at(pos)
            err = LandmarcEstimator().estimate(reading).error_to(pos)
            assert err < 0.25, (pos, err)

    def test_k4_selects_cell_corners_in_clean_channel(self):
        reading = clean_reading_at((1.5, 1.5))
        result = LandmarcEstimator(k=4).estimate(reading)
        grid = paper_testbed_grid()
        expected = {
            grid.flat_index(1, 1), grid.flat_index(1, 2),
            grid.flat_index(2, 1), grid.flat_index(2, 2),
        }
        assert set(result.diagnostics["neighbours"]) == expected

    def test_weights_sum_to_one(self):
        reading = clean_reading_at((2.2, 1.1))
        weights = LandmarcEstimator().estimate(reading).diagnostics["weights"]
        assert sum(weights) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights)

    def test_k_larger_than_population_clamped(self):
        reading = clean_reading_at((1.0, 1.0))
        result = LandmarcEstimator(k=50).estimate(reading)
        assert len(result.diagnostics["neighbours"]) == 16

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            LandmarcEstimator(k=0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            LandmarcEstimator(epsilon=0.0)


class TestWeightedKnn:
    def test_landmarc_equivalence(self):
        reading = clean_reading_at((1.8, 2.1))
        lm = LandmarcEstimator(k=4).estimate(reading)
        knn = WeightedKnnEstimator(k=4, metric="euclidean", weight_exponent=2.0)
        knn_res = knn.estimate(reading)
        np.testing.assert_allclose(knn_res.position, lm.position, atol=1e-9)

    def test_zero_exponent_unweighted_mean(self):
        reading = clean_reading_at((1.5, 1.5))
        result = WeightedKnnEstimator(k=4, weight_exponent=0.0).estimate(reading)
        neighbours = result.diagnostics["neighbours"]
        expected = reading.reference_positions[neighbours].mean(axis=0)
        np.testing.assert_allclose(result.position, expected)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
    def test_metrics_all_work(self, metric):
        reading = clean_reading_at((1.2, 2.3))
        err = WeightedKnnEstimator(metric=metric).estimate(reading).error_to((1.2, 2.3))
        assert err < 0.4

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedKnnEstimator(metric="cosine")

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedKnnEstimator(weight_exponent=-1.0)


class TestNearestReference:
    def test_snaps_to_closest_tag(self):
        reading = clean_reading_at((1.1, 1.9))
        result = NearestReferenceEstimator().estimate(reading)
        # Closest grid tag to (1.1, 1.9) is (1, 2).
        np.testing.assert_allclose(result.position, (1.0, 2.0))

    def test_error_bounded_by_half_diagonal(self):
        # Anywhere inside the grid, the nearest tag is within half a cell
        # diagonal (~0.71 m) in the clean channel.
        for pos in [(0.4, 0.4), (1.5, 1.5), (2.9, 2.1)]:
            err = NearestReferenceEstimator().estimate(
                clean_reading_at(pos)
            ).error_to(pos)
            assert err <= np.sqrt(2) / 2 + 0.05


class TestWeightedCentroid:
    def test_small_tau_approaches_nearest(self):
        reading = clean_reading_at((1.1, 1.9))
        soft = WeightedCentroidEstimator(tau_db=0.05).estimate(reading)
        near = NearestReferenceEstimator().estimate(reading)
        assert soft.error_to(near.position) < 0.1

    def test_large_tau_approaches_grid_centroid(self):
        reading = clean_reading_at((0.3, 0.3))
        soft = WeightedCentroidEstimator(tau_db=1000.0).estimate(reading)
        centroid = reading.reference_positions.mean(axis=0)
        np.testing.assert_allclose(soft.position, centroid, atol=0.01)

    def test_moderate_tau_reasonable_accuracy(self):
        pos = (1.6, 1.4)
        err = WeightedCentroidEstimator(tau_db=2.0).estimate(
            clean_reading_at(pos)
        ).error_to(pos)
        assert err < 0.6

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightedCentroidEstimator(tau_db=0.0)


class TestTriangulation:
    def test_without_reader_positions_degrades_to_landmarc(self):
        reading = clean_reading_at((1.4, 2.2))
        tri = TriangulationLandmarcEstimator(blend=0.5)
        lm = LandmarcEstimator()
        np.testing.assert_allclose(
            tri.estimate(reading).position, lm.estimate(reading).position
        )

    def test_with_readers_improves_clean_channel(self):
        pos = (1.4, 2.2)
        reading = clean_reading_at(pos)
        tri = TriangulationLandmarcEstimator(blend=1.0)
        tri.set_reader_positions(corner_reader_positions(paper_testbed_grid()))
        err_tri = tri.estimate(reading).error_to(pos)
        err_lm = LandmarcEstimator().estimate(reading).error_to(pos)
        # Pure multilateration in a clean log-distance world is accurate
        # up to the residual Rician jitter of the readings.
        assert err_tri < err_lm
        assert err_tri < 0.2

    def test_blend_zero_is_pure_landmarc(self):
        reading = clean_reading_at((2.1, 0.8))
        tri = TriangulationLandmarcEstimator(blend=0.0)
        tri.set_reader_positions(corner_reader_positions(paper_testbed_grid()))
        np.testing.assert_allclose(
            tri.estimate(reading).position,
            LandmarcEstimator().estimate(reading).position,
        )

    def test_reader_count_mismatch_rejected(self):
        reading = clean_reading_at((1.0, 1.0))
        tri = TriangulationLandmarcEstimator()
        tri.set_reader_positions(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError, match="reader"):
            tri.estimate(reading)

    def test_invalid_blend_rejected(self):
        with pytest.raises(ConfigurationError):
            TriangulationLandmarcEstimator(blend=1.5)

    def test_diagnostics_expose_ranges(self):
        reading = clean_reading_at((1.4, 2.2))
        tri = TriangulationLandmarcEstimator(blend=0.5)
        tri.set_reader_positions(corner_reader_positions(paper_testbed_grid()))
        diag = tri.estimate(reading).diagnostics
        assert diag["triangulated"] is True
        assert len(diag["ranges_m"]) == 4
