"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig6", "--trials", "3"])
        assert args.name == "fig6"
        assert args.trials == 3

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.env == "Env3"
        assert not args.all_baselines

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "interference" in out

    def test_figure_fig2b_small(self, capsys):
        assert main(["figure", "fig2b", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "Env3" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--env", "Env1", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "LANDMARC" in out
        assert "95% CI" in out

    def test_compare_all_baselines(self, capsys):
        assert main(
            ["compare", "--env", "Env1", "--trials", "2", "--all-baselines"]
        ) == 0
        out = capsys.readouterr().out
        assert "Nearest" in out

    @pytest.mark.slow
    def test_track_runs(self, capsys):
        assert main(["track", "--env", "Env1"]) == 0
        out = capsys.readouterr().out
        assert "RMSE" in out

    @pytest.mark.slow
    def test_report_no_sweeps(self, capsys):
        assert main(["report", "--trials", "2", "--no-sweeps"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2(b)" in out
        assert "Statistical summary" in out
        assert "Fig. 7" not in out
