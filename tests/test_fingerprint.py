"""Tests for the offline fingerprinting baseline and its drift ablation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FingerprintEstimator,
    VIREConfig,
    VIREEstimator,
    corner_reader_positions,
    paper_testbed_grid,
)
from repro.exceptions import EstimationError, ReadingError
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.rf import env3
from repro.utils.rng import derive_rng

from .conftest import make_clean_environment


@pytest.fixture
def calibrated(grid, readers):
    env = make_clean_environment()
    channel = env.build_channel(readers, seed=0)
    est = FingerprintEstimator(resolution=10)
    est.calibrate(channel, grid, derive_rng(0, "calibration"))
    return est


def clean_reading_at(position, seed=0):
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=3),
    )
    return sampler.reading_for(position)


class TestFingerprint:
    def test_uncalibrated_raises(self, grid):
        est = FingerprintEstimator()
        with pytest.raises(EstimationError, match="calibrate"):
            est.estimate(clean_reading_at((1.0, 1.0)))

    def test_calibrate_reports_point_count(self, calibrated):
        assert calibrated.calibrated
        diag = calibrated.estimate(clean_reading_at((1.0, 1.0))).diagnostics
        assert diag["map_points"] == 100

    def test_accurate_with_fresh_map(self, calibrated):
        for pos in [(1.5, 1.5), (0.6, 2.4), (2.7, 0.9)]:
            err = calibrated.estimate(clean_reading_at(pos)).error_to(pos)
            assert err < 0.3, pos

    def test_reader_count_mismatch_rejected(self, calibrated):
        reading = clean_reading_at((1.0, 1.0)).subset_readers([0, 1])
        with pytest.raises(ReadingError, match="calibrated with"):
            calibrated.estimate(reading)

    def test_resolution_improves_accuracy(self, grid, readers):
        env = make_clean_environment()
        channel = env.build_channel(readers, seed=0)
        errs = {}
        for resolution in (3, 12):
            est = FingerprintEstimator(resolution=resolution)
            est.calibrate(channel, grid, derive_rng(0, "cal"))
            errs[resolution] = est.estimate(
                clean_reading_at((1.3, 1.7))
            ).error_to((1.3, 1.7))
        assert errs[12] < errs[3]

    @pytest.mark.slow
    def test_drift_ablation_vire_wins_when_world_changes(self, grid, readers):
        """Fingerprinting beats VIRE when the map is fresh, but a changed
        environment (new frozen world) invalidates the offline map while
        VIRE's live reference tags keep it calibrated — the core argument
        for reference-tag localization."""
        env = env3()
        cal_channel = env.build_channel(readers, seed=100)
        fingerprint = FingerprintEstimator(resolution=12)
        fingerprint.calibrate(cal_channel, grid, derive_rng(0, "cal"))
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))

        probe_points = [(1.3, 1.7), (2.2, 0.8), (0.7, 2.3), (1.8, 2.1)]

        def mean_errors(world_seed: int) -> tuple[float, float]:
            errs_fp, errs_vire = [], []
            for trial in range(4):
                sampler = TrialSampler(env, grid, seed=world_seed + trial)
                for pos in probe_points:
                    reading = sampler.reading_for(pos)
                    errs_fp.append(fingerprint.estimate(reading).error_to(pos))
                    errs_vire.append(vire.estimate(reading).error_to(pos))
            return float(np.mean(errs_fp)), float(np.mean(errs_vire))

        # Fresh map: same worlds the calibration saw.
        fp_fresh, _ = mean_errors(world_seed=100)
        # Drifted: entirely different frozen worlds.
        fp_drift, vire_drift = mean_errors(world_seed=500)

        assert fp_drift > fp_fresh          # the map went stale
        assert vire_drift < fp_drift        # live references keep VIRE good
