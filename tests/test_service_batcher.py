"""Tests for the micro-batcher: size, deadline and drain triggers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.service import LocalizationRequest, MetricsRegistry, MicroBatcher


def req(tag: str, t: float) -> LocalizationRequest:
    return LocalizationRequest(tag_id=tag, enqueued_at_s=t)


class TestSizeTrigger:
    def test_flushes_exactly_at_max_batch_size(self):
        b = MicroBatcher(max_batch_size=3, max_latency_s=10.0)
        b.submit(req("a", 0.0))
        b.submit(req("b", 0.0))
        assert b.poll(0.0) == []
        b.submit(req("c", 0.0))
        batches = b.poll(0.0)
        assert len(batches) == 1
        assert batches[0].reason == "size"
        assert [r.tag_id for r in batches[0]] == ["a", "b", "c"]
        assert b.pending == 0

    def test_multiple_full_batches_in_one_poll(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=10.0)
        for i in range(5):
            b.submit(req(f"t{i}", 0.0))
        batches = b.poll(0.0)
        assert [batch.reason for batch in batches] == ["size", "size"]
        assert b.pending == 1  # leftover waits for its deadline


class TestDeadlineTrigger:
    def test_flush_on_deadline_even_if_not_full(self):
        b = MicroBatcher(max_batch_size=100, max_latency_s=0.25)
        b.submit(req("a", 1.0))
        b.submit(req("b", 1.1))
        assert b.poll(1.2) == []  # oldest is only 0.2s old
        batches = b.poll(1.25)  # oldest hits max_latency exactly
        assert len(batches) == 1
        assert batches[0].reason == "deadline"
        assert len(batches[0]) == 2  # deadline flush takes everything pending

    def test_next_deadline_tracks_oldest(self):
        b = MicroBatcher(max_batch_size=100, max_latency_s=0.5)
        assert b.next_deadline() is None
        b.submit(req("a", 2.0))
        b.submit(req("b", 3.0))
        assert b.next_deadline() == pytest.approx(2.5)

    def test_deadline_measured_from_enqueue_not_poll(self):
        b = MicroBatcher(max_batch_size=100, max_latency_s=1.0)
        b.submit(req("a", 0.0))
        b.poll(0.5)
        b.poll(0.9)
        assert b.pending == 1
        assert len(b.poll(1.0)) == 1


class TestMaxBatchesCap:
    """poll(max_batches=K) models a bounded executor (K batches/tick)."""

    def test_cap_limits_size_cuts_per_poll(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=10.0)
        for i in range(8):
            b.submit(req(f"t{i}", 0.0))
        batches = b.poll(0.0, max_batches=1)
        assert [batch.reason for batch in batches] == ["size"]
        assert b.pending == 6  # backlog carried to the next tick

    def test_backlog_drains_across_successive_polls(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=10.0)
        for i in range(6):
            b.submit(req(f"t{i}", 0.0))
        seen = []
        for _ in range(3):
            seen += b.poll(0.0, max_batches=1)
        assert len(seen) == 3
        assert b.pending == 0

    def test_deadline_flush_suppressed_while_backlog_is_full(self):
        # An exhausted budget must not sneak an extra deadline cut in.
        b = MicroBatcher(max_batch_size=2, max_latency_s=0.1)
        for i in range(5):
            b.submit(req(f"t{i}", 0.0))
        batches = b.poll(5.0, max_batches=1)
        assert [batch.reason for batch in batches] == ["size"]

    def test_deadline_flush_still_fires_under_the_cap(self):
        b = MicroBatcher(max_batch_size=10, max_latency_s=0.1)
        b.submit(req("a", 0.0))
        batches = b.poll(5.0, max_batches=1)
        assert [batch.reason for batch in batches] == ["deadline"]

    def test_default_poll_is_unlimited(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=10.0)
        for i in range(8):
            b.submit(req(f"t{i}", 0.0))
        assert len(b.poll(0.0)) == 4


class TestDrain:
    def test_drain_flushes_remainder(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=100.0)
        for i in range(3):
            b.submit(req(f"t{i}", 0.0))
        batches = b.drain(0.1)
        assert [batch.reason for batch in batches] == ["size", "drain"]
        assert b.pending == 0

    def test_drain_empty_is_noop(self):
        assert MicroBatcher().drain(0.0) == []


class TestAccounting:
    def test_flush_reason_counters(self):
        b = MicroBatcher(max_batch_size=2, max_latency_s=0.5)
        for i in range(4):
            b.submit(req(f"t{i}", 0.0))
        b.poll(0.0)
        b.submit(req("late", 1.0))
        b.poll(2.0)
        b.submit(req("tail", 3.0))
        b.drain(3.0)
        assert b.flushes_by_reason == {"size": 2, "deadline": 1, "drain": 1}
        assert b.batches_flushed == 4
        assert b.submitted == 6

    def test_metrics_wiring(self):
        metrics = MetricsRegistry()
        b = MicroBatcher(max_batch_size=1, max_latency_s=1.0, metrics=metrics)
        b.submit(req("a", 0.0))
        b.poll(0.0)
        assert metrics.get("batcher_requests_total").value == 1
        assert metrics.get("batcher_flushes_size_total").value == 1
        assert metrics.get("batcher_batch_size_requests").count == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_latency_s=0.0)
