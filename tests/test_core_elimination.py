"""Tests for proximity maps, elimination, and the adaptive threshold."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.elimination import eliminate, vote_map
from repro.core.proximity import ProximityMap, build_proximity_maps, rssi_deviations
from repro.core.threshold import AdaptiveThresholdSelector, minimal_feasible_threshold
from repro.exceptions import ConfigurationError


def deviations_strategy(k=3, rows=5, cols=5):
    return arrays(
        np.float64,
        (k, rows, cols),
        elements=st.floats(0.0, 20.0, allow_nan=False),
    )


class TestRssiDeviations:
    def test_absolute_difference(self):
        virtual = np.zeros((2, 3, 3))
        virtual[0] = -70.0
        virtual[1] = -60.0
        dev = rssi_deviations(virtual, [-65.0, -65.0])
        np.testing.assert_allclose(dev[0], 5.0)
        np.testing.assert_allclose(dev[1], 5.0)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            rssi_deviations(np.zeros((2, 3)), [0.0, 0.0])
        with pytest.raises(ConfigurationError):
            rssi_deviations(np.zeros((2, 3, 3)), [0.0])


class TestProximityMap:
    def test_mask_threshold_semantics(self):
        dev = np.array([[[0.5, 1.5], [1.0, 3.0]]])
        maps = build_proximity_maps(dev, 1.0)
        np.testing.assert_array_equal(
            maps[0].mask, [[True, False], [True, False]]
        )
        assert maps[0].area == 2
        assert maps[0].fraction == 0.5

    def test_per_reader_thresholds(self):
        dev = np.ones((2, 2, 2))
        maps = build_proximity_maps(dev, [0.5, 2.0])
        assert maps[0].area == 0
        assert maps[1].area == 4

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            build_proximity_maps(np.ones((1, 2, 2)), -1.0)

    def test_map_validation(self):
        with pytest.raises(ConfigurationError):
            ProximityMap(mask=np.zeros(3, dtype=bool), threshold_db=1.0,
                         reader_index=0)


class TestEliminate:
    def _maps(self, masks):
        return [
            ProximityMap(mask=np.asarray(m, dtype=bool), threshold_db=1.0,
                         reader_index=i)
            for i, m in enumerate(masks)
        ]

    def test_strict_intersection(self):
        maps = self._maps([
            [[1, 1], [0, 1]],
            [[1, 0], [0, 1]],
        ])
        out = eliminate(maps)
        np.testing.assert_array_equal(out, [[True, False], [False, True]])

    def test_majority_vote(self):
        maps = self._maps([
            [[1, 0]],
            [[1, 1]],
            [[0, 1]],
        ])
        out = eliminate(maps, min_votes=2)
        np.testing.assert_array_equal(out, [[True, True]])

    def test_vote_map_counts(self):
        maps = self._maps([[[1, 0]], [[1, 1]]])
        np.testing.assert_array_equal(vote_map(maps), [[2, 1]])

    def test_empty_result_possible(self):
        maps = self._maps([[[1, 0]], [[0, 1]]])
        assert not eliminate(maps).any()

    def test_min_votes_bounds(self):
        maps = self._maps([[[1, 0]]])
        with pytest.raises(ConfigurationError):
            eliminate(maps, min_votes=2)

    def test_shape_mismatch_rejected(self):
        maps = self._maps([[[1, 0]], [[1, 0], [0, 1]]])
        with pytest.raises(ConfigurationError, match="shapes differ"):
            eliminate(maps)

    def test_no_maps_rejected(self):
        with pytest.raises(ConfigurationError):
            eliminate([])

    @given(deviations_strategy())
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threshold(self, dev):
        """A larger threshold never removes a surviving cell."""
        small = eliminate(build_proximity_maps(dev, 2.0))
        large = eliminate(build_proximity_maps(dev, 5.0))
        assert np.all(large[small])


class TestMinimalFeasibleThreshold:
    def test_single_cell_example(self):
        dev = np.array([
            [[3.0, 1.0], [4.0, 2.0]],
            [[2.0, 5.0], [1.0, 2.0]],
        ])
        # per-cell max over readers: [[3, 5], [4, 2]] -> min = 2.
        assert minimal_feasible_threshold(dev) == pytest.approx(2.0)

    def test_min_cells_takes_kth_smallest(self):
        dev = np.array([
            [[3.0, 1.0], [4.0, 2.0]],
            [[2.0, 5.0], [1.0, 2.0]],
        ])
        assert minimal_feasible_threshold(dev, min_cells=2) == pytest.approx(3.0)

    @given(deviations_strategy())
    @settings(max_examples=40, deadline=None)
    def test_feasibility_and_minimality(self, dev):
        thr = minimal_feasible_threshold(dev, min_cells=3)
        selected = eliminate(build_proximity_maps(dev, thr))
        assert selected.sum() >= 3
        tighter = eliminate(build_proximity_maps(dev, max(thr - 1e-6, 0.0)))
        # The threshold is minimal: any epsilon tighter loses feasibility
        # (unless ties make several cells share the same worst deviation).
        assert tighter.sum() <= selected.sum()

    def test_min_cells_exceeding_lattice_rejected(self):
        with pytest.raises(ConfigurationError):
            minimal_feasible_threshold(np.zeros((1, 2, 2)), min_cells=5)

    def test_negative_deviations_rejected(self):
        with pytest.raises(ConfigurationError):
            minimal_feasible_threshold(-np.ones((1, 2, 2)))


class TestAdaptiveSelector:
    def test_iterative_matches_closed_form(self):
        rng = np.random.default_rng(0)
        dev = rng.uniform(0.0, 8.0, (4, 9, 9))
        selector = AdaptiveThresholdSelector(step_db=0.02, min_cells=1)
        closed = selector.closed_form(dev)
        iterative = selector.iterative(dev)
        # The step-wise reduction lands within one step of the closed form.
        assert iterative == pytest.approx(closed, abs=selector.step_db + 1e-9)

    def test_iterative_feasible(self):
        rng = np.random.default_rng(1)
        dev = rng.uniform(0.0, 8.0, (3, 7, 7))
        selector = AdaptiveThresholdSelector(step_db=0.05, min_cells=4)
        thr = selector.iterative(dev)
        selected = eliminate(build_proximity_maps(dev, thr))
        assert selected.sum() >= 4

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdSelector(step_db=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveThresholdSelector(min_cells=0)

    def test_wide_range_does_not_exhaust_iterations(self):
        """A huge max-to-minimal deviation span used to hit the
        ``max_iterations`` cap at ``step_db`` granularity and return a
        threshold far above the feasible minimum; the closed-form clamp
        makes the descent O(1) in the range."""
        dev = np.full((2, 5, 5), 0.5)
        dev[0, 0, 0] = 50_000.0  # one pathological cell widens the start
        dev[1, 0, 0] = 50_000.0
        selector = AdaptiveThresholdSelector(step_db=0.05, min_cells=1)
        closed = selector.closed_form(dev)
        iterative = selector.iterative(dev)
        assert iterative == pytest.approx(closed, abs=selector.step_db + 1e-9)
        # Naive descent would have needed ~1e6 iterations (> the cap).
        assert (50_000.0 - closed) / selector.step_db > selector.max_iterations

    def test_iterative_matches_closed_form_on_masked_inputs(self):
        """NaN (unknown) deviations: both procedures skip unknown cells
        and still agree within one step."""
        rng = np.random.default_rng(7)
        dev = rng.uniform(0.0, 6.0, (3, 8, 8))
        mask = rng.random((3, 8, 8)) < 0.2
        dev[mask] = np.nan
        selector = AdaptiveThresholdSelector(step_db=0.05, min_cells=2)
        closed = selector.closed_form(dev)
        iterative = selector.iterative(dev)
        assert np.isfinite(iterative)
        assert iterative == pytest.approx(closed, abs=selector.step_db + 1e-9)

    def test_iterative_infeasible_masked_raises(self):
        dev = np.full((2, 3, 3), np.nan)
        selector = AdaptiveThresholdSelector()
        with pytest.raises(ConfigurationError):
            selector.iterative(dev)
