"""Tests for path loss models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.rf.propagation import (
    MIN_DISTANCE_M,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiSlopePathLoss,
    PathLossModel,
)


class TestLogDistance:
    def test_reference_anchor(self):
        m = LogDistancePathLoss(rssi_at_reference=-45.0, gamma=2.0)
        assert m.rssi(1.0) == pytest.approx(-45.0)

    def test_inverse_square_decade(self):
        m = LogDistancePathLoss(rssi_at_reference=-45.0, gamma=2.0)
        assert m.rssi(10.0) == pytest.approx(-65.0)  # 20 dB per decade

    def test_gamma_scales_slope(self):
        m = LogDistancePathLoss(rssi_at_reference=-45.0, gamma=4.0)
        assert m.rssi(10.0) == pytest.approx(-85.0)

    def test_vectorized(self):
        m = LogDistancePathLoss()
        out = m.rssi(np.array([1.0, 2.0, 4.0]))
        assert out.shape == (3,)
        # Equal ratios -> equal dB steps.
        assert out[0] - out[1] == pytest.approx(out[1] - out[2])

    def test_clamps_tiny_distance(self):
        m = LogDistancePathLoss()
        assert np.isfinite(m.rssi(0.0))
        assert m.rssi(0.0) == m.rssi(MIN_DISTANCE_M)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss().rssi(-1.0)

    def test_rejects_bad_gamma(self):
        with pytest.raises(Exception):
            LogDistancePathLoss(gamma=0.0)

    @given(st.floats(0.1, 100), st.floats(0.1, 100))
    def test_monotone_decreasing(self, d1, d2):
        m = LogDistancePathLoss()
        lo, hi = sorted((d1, d2))
        assert m.rssi(hi) <= m.rssi(lo) + 1e-9

    def test_satisfies_protocol(self):
        assert isinstance(LogDistancePathLoss(), PathLossModel)


class TestFreeSpace:
    def test_matches_friis_form(self):
        m = FreeSpacePathLoss(eirp_dbm=0.0, wavelength_m=1.0)
        expected = -20.0 * np.log10(4.0 * np.pi * 5.0)
        assert m.rssi(5.0) == pytest.approx(expected)

    def test_gamma_two_slope(self):
        m = FreeSpacePathLoss()
        assert m.rssi(1.0) - m.rssi(10.0) == pytest.approx(20.0)


class TestMultiSlope:
    def test_continuous_at_breakpoint(self):
        m = MultiSlopePathLoss(breakpoints_m=(8.0,), gammas=(2.0, 3.5))
        eps = 1e-6
        assert m.rssi(8.0 - eps) == pytest.approx(m.rssi(8.0 + eps), abs=1e-3)

    def test_slopes_per_regime(self):
        m = MultiSlopePathLoss(
            rssi_at_reference=-40.0, breakpoints_m=(10.0,), gammas=(2.0, 4.0)
        )
        # Near regime: 20 dB/decade.
        assert m.rssi(1.0) - m.rssi(10.0) == pytest.approx(20.0)
        # Far regime: 40 dB/decade.
        assert m.rssi(10.0) - m.rssi(100.0) == pytest.approx(40.0)

    def test_three_slopes(self):
        m = MultiSlopePathLoss(breakpoints_m=(5.0, 15.0), gammas=(2.0, 3.0, 4.0))
        d = np.array([1.0, 4.9, 5.1, 14.9, 15.1, 30.0])
        out = m.rssi(d)
        assert np.all(np.diff(out) < 0)

    def test_rejects_mismatched_counts(self):
        with pytest.raises(ConfigurationError, match="gammas"):
            MultiSlopePathLoss(breakpoints_m=(5.0,), gammas=(2.0,))

    def test_rejects_unordered_breakpoints(self):
        with pytest.raises(ConfigurationError):
            MultiSlopePathLoss(breakpoints_m=(10.0, 5.0), gammas=(2.0, 3.0, 4.0))

    @given(st.floats(0.1, 90), st.floats(0.1, 90))
    def test_monotone_decreasing(self, d1, d2):
        m = MultiSlopePathLoss()
        lo, hi = sorted((d1, d2))
        assert m.rssi(hi) <= m.rssi(lo) + 1e-9
