"""Tests for repro.loadtest.slo, repro.loadtest.capacity and the figure
registry in repro.analysis.registry."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.registry import (
    build_capacity_report,
    build_figure,
    figure_names,
    get_figure,
    load_sweep,
)
from repro.exceptions import ConfigurationError
from repro.loadtest import (
    LEVEL_NAMES,
    CapacityModel,
    fit_capacity_model,
    metrics_slo,
    quantile_linear,
    result_level,
    slo_summary,
    trace_slo,
)
from repro.service.metrics import MetricsRegistry
from repro.service.pipeline import ServiceResult


def make_result(estimator="VIRE", degraded=False, reason=None,
                requested=0.0, completed=0.5) -> ServiceResult:
    return ServiceResult(
        tag_id="tag-1",
        position=(1.0, 1.0),
        estimator=estimator,
        degraded=degraded,
        reason=reason,
        requested_at_s=requested,
        completed_at_s=completed,
        processing_latency_s=0.001,
    )


class TestQuantileLinear:
    def test_interpolates_between_order_statistics(self):
        values = [float(v) for v in range(1, 101)]
        assert quantile_linear(values, 0.50) == pytest.approx(50.5)
        assert quantile_linear(values, 0.95) == pytest.approx(95.05)
        assert quantile_linear(values, 0.99) == pytest.approx(99.01)
        assert quantile_linear(values, 0.0) == 1.0
        assert quantile_linear(values, 1.0) == 100.0

    def test_two_point_median_is_the_midpoint(self):
        assert quantile_linear([0.0, 1.0], 0.5) == 0.5

    def test_empty_is_nan_and_range_checked(self):
        assert math.isnan(quantile_linear([], 0.5))
        with pytest.raises(ValueError):
            quantile_linear([1.0], 1.5)


class TestResultLevel:
    @pytest.mark.parametrize(
        "estimator,degraded,level",
        [
            ("gateway-interim", True, 0),
            ("VIRE", False, 1),
            ("VIRE", True, 2),
            ("LANDMARC", True, 3),
            ("last-known", True, 4),
        ],
    )
    def test_ladder_mapping(self, estimator, degraded, level):
        r = make_result(estimator=estimator, degraded=degraded)
        assert result_level(r) == level
        assert level in LEVEL_NAMES


class TestSloSummary:
    def test_counts_and_availability(self):
        results = [
            make_result(completed=0.2),
            make_result(estimator="LANDMARC", degraded=True,
                        reason="deadline", completed=6.0),
        ]
        doc = slo_summary(results, offered=4, duration_s=10.0)
        assert doc["offered"] == 4
        assert doc["served"] == 2
        assert doc["availability"] == 0.5
        assert doc["sustained_per_s"] == 0.2
        assert doc["levels"] == {"full_vire": 1, "landmarc": 1}
        assert doc["reasons"] == {"deadline": 1}
        assert doc["degraded"] == 1
        assert doc["latency"]["max_s"] == 6.0

    def test_empty_run_is_well_defined(self):
        doc = slo_summary([], offered=0, duration_s=1.0)
        assert math.isnan(doc["availability"])
        assert doc["degraded_fraction"] == 0.0
        assert math.isnan(doc["latency"]["p99_s"])

    def test_latency_is_queue_wait(self):
        doc = slo_summary(
            [make_result(requested=1.0, completed=4.0)],
            offered=1, duration_s=1.0,
        )
        assert doc["latency"]["p50_s"] == 3.0


class TestMetricsSlo:
    def test_histograms_summarized_with_interpolation(self):
        reg = MetricsRegistry("svc")
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.025))
        h.observe(0.02)
        reg.counter("hits_total").inc()  # non-histograms are skipped
        doc = metrics_slo(reg)
        assert list(doc) == ["svc_lat_seconds"]
        assert doc["svc_lat_seconds"]["count"] == 1.0
        assert doc["svc_lat_seconds"]["p99"] < 0.025


class TestTraceSlo:
    def test_composes_stage_and_ladder_views(self):
        from repro.obs import Tracer

        docs = []
        tracer = Tracer(sink=lambda span: docs.append(span.document()))
        with tracer.span("service.serve", tag_id="tag-1"):
            with tracer.span("vire.estimate"):
                pass
        doc = trace_slo(docs)
        assert "vire.estimate" in doc["stages"]
        assert doc["ladder"]["serves"] == 1


class TestCapacityModel:
    def test_recovers_exact_linear_relation(self):
        # y = 2 + 3*batch - 1*cache + 0.5*degraded + 4*zones, exactly.
        def y(b, c, d, z):
            return 2.0 + 3.0 * b - 1.0 * c + 0.5 * d + 4.0 * z

        points = []
        grid = [
            (b, c, d, z)
            for b in (1.0, 4.0, 8.0)
            for c in (0.0, 0.5)
            for d in (0.0, 0.25)
            for z in (1.0, 2.0)
        ]
        for b, c, d, z in grid:
            points.append({
                "batch_size_mean": b, "cache_hit_rate": c,
                "degraded_fraction": d, "n_zones": z,
                "sustained_per_s": y(b, c, d, z),
            })
        model = fit_capacity_model(points)
        assert model.intercept == pytest.approx(2.0, abs=1e-5)
        coef = dict(zip(model.features, model.coefficients))
        assert coef["batch_size_mean"] == pytest.approx(3.0, abs=1e-6)
        assert coef["cache_hit_rate"] == pytest.approx(-1.0, abs=1e-5)
        assert coef["degraded_fraction"] == pytest.approx(0.5, abs=1e-5)
        assert coef["n_zones"] == pytest.approx(4.0, abs=1e-6)
        assert model.r2 == pytest.approx(1.0)
        assert model.predict(points[0]) == pytest.approx(
            points[0]["sustained_per_s"], abs=1e-5
        )

    def test_constant_feature_is_ridge_stabilized(self):
        points = [
            {"batch_size_mean": b, "cache_hit_rate": 0.5,
             "degraded_fraction": 0.0, "n_zones": 1.0,
             "sustained_per_s": 2.0 * b}
            for b in (1.0, 2.0, 4.0, 8.0)
        ]
        model = fit_capacity_model(points)  # must not raise
        coef = dict(zip(model.features, model.coefficients))
        assert coef["batch_size_mean"] == pytest.approx(2.0, abs=1e-3)

    def test_missing_key_and_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_capacity_model([])
        with pytest.raises(ConfigurationError):
            fit_capacity_model([{"batch_size_mean": 1.0}])
        with pytest.raises(ConfigurationError):
            CapacityModel(
                features=("a",), intercept=0.0, coefficients=(1.0,),
                r2=1.0, n_points=1,
            ).predict({"b": 1.0})

    def test_canonical_document_is_json_stable(self):
        points = [
            {"batch_size_mean": float(b), "cache_hit_rate": 0.1 * b,
             "degraded_fraction": 0.0, "n_zones": 1.0,
             "sustained_per_s": 3.0 * b}
            for b in (1, 2, 3)
        ]
        doc = fit_capacity_model(points).canonical_document()
        text = json.dumps(doc, sort_keys=True, allow_nan=False)
        assert json.loads(text) == doc


def _sweep_points() -> list[dict]:
    """Two synthetic witness documents shaped like real sweep points."""
    def point(name, rate, sustained, p99):
        return {
            "profile": {"name": name},
            "offered": int(rate * 10),
            "served": int(sustained * 10),
            "admission": {"admitted": int(sustained * 10), "shed": 0},
            "slo": {
                "levels": {"full_vire": int(sustained * 10)},
                "reasons": {},
                "latency": {"p50_s": 0.2, "p95_s": 0.8, "p99_s": p99,
                            "max_s": p99},
            },
            "zones": {"z0": {"records_dropped": 0, "records_shed": 2}},
            "capacity_point": {
                "offered_rate_per_s": rate,
                "sustained_per_s": sustained,
                "batch_size_mean": 4.0,
                "cache_hit_rate": 0.8,
                "degraded_fraction": 0.0,
                "n_zones": 1.0,
                "availability": sustained / rate,
                "latency_p99_s": p99,
                "mean_error_m": 0.5,
            },
        }

    return [point("x1", 4.0, 4.0, 0.5), point("x2", 8.0, 7.0, 1.5)]


class TestFigureRegistry:
    def test_expected_figures_are_registered(self):
        assert figure_names() == (
            "accuracy_vs_density",
            "capacity_model",
            "capacity_throughput",
            "latency_percentiles",
            "shed_breakdown",
        )

    def test_artifact_names_are_derived(self):
        for name in figure_names():
            assert get_figure(name).artifact == f"report_{name}.json"

    def test_unknown_figure_raises(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            get_figure("nope")

    def test_each_figure_regenerates_in_isolation(self):
        points = _sweep_points()
        for name in figure_names():
            doc = build_figure(name, points)
            assert doc["figure"] == name
            assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_throughput_series_sorted_by_offered_rate(self):
        doc = build_figure("capacity_throughput", _sweep_points())
        rates = [s["offered_rate_per_s"] for s in doc["data"]["series"]]
        assert rates == sorted(rates)
        assert doc["data"]["peak_sustained_per_s"] == 7.0

    def test_shed_breakdown_aggregates_zone_counters(self):
        doc = build_figure("shed_breakdown", _sweep_points())
        assert all(s["records_shed"] == 2 for s in doc["data"]["series"])

    def test_full_report_contains_every_figure(self):
        report = build_capacity_report(_sweep_points(), meta={"k": 1})
        assert set(report["figures"]) == set(figure_names())
        assert report["meta"] == {"k": 1}
        assert report["n_points"] == 2
        with pytest.raises(ConfigurationError):
            build_capacity_report([])

    def test_load_sweep_reads_jsonl(self, tmp_path):
        path = tmp_path / "load_sweep.jsonl"
        points = _sweep_points()
        path.write_text(
            "".join(json.dumps(p, sort_keys=True) + "\n" for p in points)
        )
        assert load_sweep(tmp_path) == points
        with pytest.raises(ConfigurationError):
            load_sweep(tmp_path / "missing")
        (tmp_path / "empty").mkdir()
        (tmp_path / "empty" / "load_sweep.jsonl").write_text("\n")
        with pytest.raises(ConfigurationError):
            load_sweep(tmp_path / "empty")
