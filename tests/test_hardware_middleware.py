"""Tests for the middleware server and its smoothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ReadingError
from repro.hardware.middleware import MiddlewareServer, SmoothingSpec
from repro.hardware.readers import ReadingRecord


def make_server(mode="window", window=3, alpha=0.5, max_age=None):
    return MiddlewareServer(
        reader_ids=["r0", "r1"],
        reference_tags={"ref-0": (0.0, 0.0), "ref-1": (1.0, 0.0)},
        smoothing=SmoothingSpec(
            mode=mode, window=window, alpha=alpha, max_age_s=max_age
        ),
    )


def feed(server, reader, tag, values, t0=0.0, dt=1.0):
    for i, v in enumerate(values):
        server.ingest(ReadingRecord(reader, tag, t0 + i * dt, v))


def fill_all(server, value=-70.0, t=0.0):
    for reader in server.reader_ids:
        for tag in (*server.reference_ids, "track"):
            server.ingest(ReadingRecord(reader, tag, t, value))


class TestSmoothingSpec:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            SmoothingSpec(mode="median")

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            SmoothingSpec(alpha=0.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SmoothingSpec(window=0)


class TestMiddleware:
    def test_window_mean(self):
        server = make_server(mode="window", window=3)
        fill_all(server)
        feed(server, "r0", "track", [-60.0, -62.0, -64.0, -66.0])
        snap = server.snapshot("track", now_s=10.0)
        # Window of 3 keeps the last three readings.
        assert snap.tracking_rssi[0] == pytest.approx(np.mean([-62, -64, -66]))

    def test_latest_mode(self):
        server = make_server(mode="latest")
        fill_all(server)
        feed(server, "r0", "track", [-60.0, -65.0])
        snap = server.snapshot("track", now_s=10.0)
        assert snap.tracking_rssi[0] == -65.0

    def test_ewma_mode(self):
        server = make_server(mode="ewma", alpha=0.5)
        fill_all(server)  # primes every series with -70
        feed(server, "r0", "track", [-60.0, -70.0])
        snap = server.snapshot("track", now_s=10.0)
        # chain: -70 (prime) -> 0.5*-60 + 0.5*-70 = -65 -> 0.5*-70 + 0.5*-65
        assert snap.tracking_rssi[0] == pytest.approx(-67.5)

    def test_snapshot_shapes_and_positions(self):
        server = make_server()
        fill_all(server)
        snap = server.snapshot("track", now_s=1.0)
        assert snap.reference_rssi.shape == (2, 2)
        assert snap.tracking_rssi.shape == (2,)
        np.testing.assert_array_equal(
            snap.reference_positions, [[0.0, 0.0], [1.0, 0.0]]
        )
        assert snap.reader_ids == ("r0", "r1")

    def test_missing_tracking_reading_raises(self):
        server = make_server()
        for reader in server.reader_ids:
            for tag in server.reference_ids:
                server.ingest(ReadingRecord(reader, tag, 0.0, -70.0))
        with pytest.raises(ReadingError, match="tracking"):
            server.snapshot("track", now_s=1.0)

    def test_missing_reference_reading_raises(self):
        server = make_server()
        fill_all(server)
        fresh = make_server()
        # Only r0 saw ref-1.
        feed(fresh, "r0", "ref-0", [-70.0])
        feed(fresh, "r0", "ref-1", [-70.0])
        feed(fresh, "r1", "ref-0", [-70.0])
        feed(fresh, "r0", "track", [-70.0])
        feed(fresh, "r1", "track", [-70.0])
        with pytest.raises(ReadingError, match="reference"):
            fresh.snapshot("track", now_s=1.0)

    def test_stale_series_treated_missing(self):
        server = make_server(max_age=5.0)
        fill_all(server, t=0.0)
        with pytest.raises(ReadingError):
            server.snapshot("track", now_s=100.0)

    def test_fresh_series_pass_age_check(self):
        server = make_server(max_age=5.0)
        fill_all(server, t=0.0)
        snap = server.snapshot("track", now_s=4.0)
        assert snap.timestamp == 4.0

    def test_unknown_reader_rejected(self):
        server = make_server()
        with pytest.raises(ReadingError, match="unknown reader"):
            server.ingest(ReadingRecord("r9", "t", 0.0, -70.0))

    def test_coverage_fractions(self):
        server = make_server()
        feed(server, "r0", "ref-0", [-70.0])
        cov = server.coverage(now_s=1.0)
        assert cov == {"r0": 0.5, "r1": 0.0}

    def test_records_ingested_counter(self):
        server = make_server()
        fill_all(server)
        assert server.records_ingested == 6

    def test_duplicate_reader_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            MiddlewareServer(
                reader_ids=["r0", "r0"],
                reference_tags={"a": (0.0, 0.0)},
            )

    def test_needs_reference_tags(self):
        with pytest.raises(ConfigurationError):
            MiddlewareServer(reader_ids=["r0"], reference_tags={})


class TestPartialSnapshot:
    """allow_partial=True: masked readings instead of ReadingError."""

    def test_complete_data_equals_strict(self):
        server = make_server()
        fill_all(server)
        strict = server.snapshot("track", now_s=1.0)
        partial = server.snapshot("track", now_s=1.0, allow_partial=True)
        assert not partial.masked
        assert np.array_equal(strict.reference_rssi, partial.reference_rssi)
        assert np.array_equal(strict.tracking_rssi, partial.tracking_rssi)
        assert strict.reader_ids == partial.reader_ids

    def test_missing_reference_becomes_nan(self):
        server = make_server()
        feed(server, "r0", "ref-0", [-70.0])
        feed(server, "r0", "track", [-60.0])
        feed(server, "r1", "ref-0", [-70.0])
        feed(server, "r1", "ref-1", [-71.0])
        feed(server, "r1", "track", [-61.0])
        snap = server.snapshot("track", now_s=1.0, allow_partial=True)
        assert snap.masked
        assert snap.n_readers == 2
        assert np.isnan(snap.reference_rssi[0, 1])  # r0 never saw ref-1
        assert np.isfinite(snap.reference_rssi[1]).all()

    def test_reader_without_tracking_value_absent(self):
        server = make_server()
        fill_all(server)
        # r1's tracking series goes stale-free but we build a fresh server
        # where r1 never saw the tracking tag at all.
        fresh = make_server()
        for reader in fresh.reader_ids:
            for tag in fresh.reference_ids:
                fresh.ingest(ReadingRecord(reader, tag, 0.0, -70.0))
        feed(fresh, "r0", "track", [-60.0])
        snap = fresh.snapshot("track", now_s=1.0, allow_partial=True)
        assert snap.masked
        assert snap.n_readers == 1
        assert snap.reader_ids == ("r0",)

    def test_no_reader_has_tracking_still_raises(self):
        server = make_server()
        for reader in server.reader_ids:
            for tag in server.reference_ids:
                server.ingest(ReadingRecord(reader, tag, 0.0, -70.0))
        with pytest.raises(ReadingError, match="no reader"):
            server.snapshot("track", now_s=1.0, allow_partial=True)

    def test_stale_expiry_masks_in_partial_mode(self):
        server = make_server(max_age=5.0)
        fill_all(server, t=0.0)
        feed(server, "r0", "track", [-60.0], t0=99.0)
        feed(server, "r0", "ref-0", [-70.0], t0=99.0)
        snap = server.snapshot("track", now_s=100.0, allow_partial=True)
        assert snap.masked
        assert snap.reader_ids == ("r0",)  # r1 fully stale -> absent
        assert np.isnan(snap.reference_rssi[0, 1])  # ref-1 stale for r0


class TestFrameStatsAndFreshness:
    def test_frame_stats_requires_known_reader(self):
        server = make_server()

        class FakeReader:
            reader_id = "r9"
            frames_received = 0
            frames_dropped = 0

        with pytest.raises(ConfigurationError, match="unknown reader"):
            server.register_frame_source(FakeReader())

    def test_frame_stats_mirror_reader_counters(self):
        server = make_server()

        class FakeReader:
            def __init__(self, rid):
                self.reader_id = rid
                self.frames_received = 7
                self.frames_dropped = 2

        r0, r1 = FakeReader("r0"), FakeReader("r1")
        server.register_frame_source(r0)
        server.register_frame_source(r1)
        r1.frames_received = 11  # live counter: stats read through
        stats = server.frame_stats()
        assert stats["r0"] == {"received": 7, "dropped": 2}
        assert stats["r1"] == {"received": 11, "dropped": 2}

    def test_frame_stats_zero_without_sources(self):
        assert make_server().frame_stats() == {
            "r0": {"received": 0, "dropped": 0},
            "r1": {"received": 0, "dropped": 0},
        }

    def test_coverage_guards_zero_references(self):
        # Degenerate server built by bypassing the reference-tag check is
        # impossible via the constructor; the guard is exercised through
        # reader_freshness's vacuous case instead (no tags tracked).
        server = make_server()
        fresh = server.reader_freshness(now_s=0.0)
        # No tracking tags given and references never seen -> 0.0 each.
        assert fresh == {"r0": 0.0, "r1": 0.0}

    def test_reader_freshness_counts_tracking_tags(self):
        server = make_server(max_age=5.0)
        fill_all(server, t=0.0)
        fresh = server.reader_freshness(now_s=1.0, tracking_tag_ids=("track",))
        assert fresh == {"r0": 1.0, "r1": 1.0}
        # After expiry everything is stale.
        fresh = server.reader_freshness(now_s=100.0, tracking_tag_ids=("track",))
        assert fresh == {"r0": 0.0, "r1": 0.0}

    def test_reader_freshness_partial(self):
        server = make_server(max_age=5.0)
        fill_all(server, t=0.0)
        # Only r0 keeps beating.
        feed(server, "r0", "ref-0", [-70.0], t0=98.0)
        feed(server, "r0", "ref-1", [-70.0], t0=98.0)
        fresh = server.reader_freshness(now_s=100.0)
        assert fresh["r0"] == 1.0
        assert fresh["r1"] == 0.0
