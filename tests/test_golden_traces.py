"""Golden-trace regression tests: byte-stable pipeline outputs.

Every fixture under ``tests/golden/`` stores coordinates and thresholds
as IEEE-754 hex strings and weight matrices as SHA-256 digests, so these
tests fail on a *single ULP* of numerical drift anywhere in the
estimation pipeline. The scalar path must reproduce each trace exactly,
and the batch engine must reproduce the scalar path exactly — the
engine's bitwise-identity contract, pinned to disk.

Fixtures are regenerated (only on intentional numerical changes) with::

    PYTHONPATH=src python -m tests.regen_golden
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError

from .regen_golden import (
    BUILDERS,
    GOLDEN_DIR,
    build_chaos_trace,
    build_masked_trace,
    build_paper_trace,
    build_report_capacity,
    build_report_schedule,
    build_trace_fig6,
    build_trace_serve,
    chaos_result_docs,
    masked_readings,
    paper_estimator,
    paper_readings,
    run_chaos_session,
)


def _load(name: str) -> dict:
    path = GOLDEN_DIR / name
    if not path.exists():  # pragma: no cover - repo always ships fixtures
        pytest.fail(
            f"golden fixture {name} missing; run "
            "`PYTHONPATH=src python -m tests.regen_golden`"
        )
    return json.loads(path.read_text())


class TestFixtureHygiene:
    def test_every_builder_has_a_fixture(self):
        for name in BUILDERS:
            assert (GOLDEN_DIR / name).exists(), name

    def test_fixtures_are_canonical_json(self):
        """sort_keys + indent=2 + trailing newline — regen is the format."""
        for name in BUILDERS:
            raw = (GOLDEN_DIR / name).read_text()
            parsed = json.loads(raw)
            assert raw == json.dumps(parsed, indent=2, sort_keys=True) + "\n"


class TestScalarMatchesGolden:
    """The scalar pipeline reproduces every stored trace byte-for-byte."""

    def test_paper_config(self):
        assert build_paper_trace() == _load("paper_config.json")

    def test_masked_reading(self):
        assert build_masked_trace() == _load("masked_reading.json")

    def test_chaos_preset(self):
        assert build_chaos_trace() == _load("chaos_preset.json")


def _batch_entries(est, readings):
    outcomes = est.estimate_outcomes(readings)
    out = []
    for outcome in outcomes:
        if isinstance(outcome, ReproError):
            out.append((type(outcome).__name__, str(outcome)))
        else:
            d = outcome.diagnostics
            out.append(
                (
                    float(outcome.position[0]).hex(),
                    float(outcome.position[1]).hex(),
                    float(d["threshold_db"]).hex(),
                    int(d["n_selected"]),
                    d.get("fallback"),
                )
            )
    return out


def _golden_entries(trace):
    out = []
    for tag in trace["tags"]:
        if "error" in tag:
            out.append((tag["error"], tag["message"]))
        else:
            out.append(
                (
                    tag["position_hex"][0],
                    tag["position_hex"][1],
                    tag["threshold_db_hex"],
                    tag["n_selected"],
                    tag["fallback"],
                )
            )
    return out


class TestBatchMatchesGolden:
    """The batch engine reproduces the stored traces byte-for-byte too."""

    def test_paper_config_batch(self):
        _, _, readings = paper_readings()
        est = paper_estimator()
        assert _batch_entries(est, readings) == _golden_entries(
            _load("paper_config.json")
        )

    def test_masked_reading_batch(self):
        _, _, readings = masked_readings()
        est = paper_estimator()
        assert _batch_entries(est, readings) == _golden_entries(
            _load("masked_reading.json")
        )

    def test_reversed_batch_order_is_irrelevant(self):
        """Batch results are per-tag functions — input order cannot leak."""
        _, _, readings = masked_readings()
        est = paper_estimator()
        forward = _batch_entries(est, readings)
        backward = _batch_entries(est, list(reversed(readings)))
        assert forward == list(reversed(backward))


class TestSpanTracesMatchGolden:
    """The logical span forest is as byte-stable as the numbers.

    These fixtures pin *decisions*, not just answers: ladder levels,
    degradation reasons, batch flush composition, cache hit/miss deltas
    and per-tag threshold selection. Any control-flow change in the
    pipeline shows up here as a readable tree diff rather than a silent
    behavioural shift.
    """

    def test_trace_serve(self):
        assert build_trace_serve() == _load("trace_serve.json")

    def test_trace_fig6(self):
        assert build_trace_fig6() == _load("trace_fig6.json")

    def test_tracing_does_not_perturb_results(self):
        """An enabled tracer must be answer-invisible: the traced chaos
        session reproduces the *untraced* golden results bit-exactly."""
        from repro.obs import Tracer

        report = run_chaos_session(tracer=Tracer())
        golden = _load("chaos_preset.json")
        assert chaos_result_docs(report) == golden["results"]

    def test_serve_trace_pins_ladder_decisions(self):
        """Every serve span in the fixture carries the ladder attrs the
        profiler consumes (level/estimator, reason when degraded)."""
        trace = _load("trace_serve.json")
        serve_attrs = []

        def walk(doc):
            if doc["name"] == "service.serve":
                serve_attrs.append(doc.get("attrs", {}))
            for child in doc.get("children", []):
                walk(child)

        for root in trace["spans"]:
            walk(root)
        assert serve_attrs, "fixture must contain serve spans"
        for attrs in serve_attrs:
            if attrs.get("failed"):
                assert attrs["reason"] == "no_reading"
            else:
                assert attrs["level"] in (1, 2, 3, 4)
                assert isinstance(attrs["estimator"], str)


class TestLoadReportsMatchGolden:
    """The load harness and figure registry are pinned end to end.

    ``report_schedule.json`` freezes the traffic generator (every
    arrival of a two-zone burst profile); ``report_capacity.json``
    freezes the whole chain behind ``repro report --from``: harness →
    witness documents → every registered figure, capacity-model fit
    included. Wall-clock fields are excluded by construction
    (witness documents carry sim-clock facts only), so both fixtures
    are byte-stable across machines.
    """

    def test_report_schedule(self):
        assert build_report_schedule() == _load("report_schedule.json")

    def test_report_capacity(self):
        assert build_report_capacity() == _load("report_capacity.json")

    def test_capacity_fixture_covers_every_registered_figure(self):
        from repro.analysis.registry import figure_names

        fixture = _load("report_capacity.json")
        assert set(fixture["report"]["figures"]) == set(figure_names())

    def test_fixtures_carry_no_wall_clock_fields(self):
        for name in ("report_schedule.json", "report_capacity.json"):
            assert "wall" not in json.dumps(_load(name))
