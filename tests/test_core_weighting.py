"""Tests for the w1/w2 weighting of surviving regions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.weighting import (
    combine_weights,
    compute_w1,
    compute_w2,
    connected_components,
)
from repro.exceptions import ConfigurationError, EstimationError


class TestW1:
    def test_inverse_smaller_deviation_bigger_weight(self):
        dev = np.array([[[1.0, 4.0]]])
        sel = np.array([[True, True]])
        w1 = compute_w1(dev, sel, mode="inverse")
        assert w1[0, 0] > w1[0, 1] > 0

    def test_zero_outside_selection(self):
        dev = np.ones((1, 2, 2))
        sel = np.array([[True, False], [False, False]])
        w1 = compute_w1(dev, sel)
        assert w1[0, 0] > 0
        assert w1[0, 1] == 0 and w1[1, 0] == 0 and w1[1, 1] == 0

    def test_uniform_mode(self):
        dev = np.random.default_rng(0).uniform(0, 5, (2, 3, 3))
        sel = np.ones((3, 3), dtype=bool)
        w1 = compute_w1(dev, sel, mode="uniform")
        np.testing.assert_array_equal(w1, 1.0)

    def test_paper_literal_requires_virtual_rssi(self):
        dev = np.ones((1, 2, 2))
        sel = np.ones((2, 2), dtype=bool)
        with pytest.raises(ConfigurationError, match="virtual_rssi"):
            compute_w1(dev, sel, mode="paper-literal")

    def test_paper_literal_inverse_of_relative_deviation(self):
        dev = np.array([[[2.0, 2.0]]])
        virtual = np.array([[[-40.0, -80.0]]])
        sel = np.array([[True, True]])
        w1 = compute_w1(dev, sel, mode="paper-literal", virtual_rssi=virtual)
        # Same absolute deviation, but relative to -80 it is smaller, so
        # the -80 cell gets the bigger weight.
        assert w1[0, 1] > w1[0, 0]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_w1(np.ones((1, 1, 1)), np.ones((1, 1), dtype=bool), mode="x")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_w1(np.ones((1, 2, 2)), np.ones((3, 3), dtype=bool))


class TestConnectedComponents:
    def test_two_clusters_4conn(self):
        sel = np.array([
            [1, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
        ], dtype=bool)
        labels, n = connected_components(sel, connectivity=4)
        assert n == 2
        assert labels[0, 0] == labels[0, 1]
        assert labels[1, 3] == labels[2, 3]
        assert labels[0, 0] != labels[1, 3]

    def test_diagonal_joins_with_8conn(self):
        sel = np.array([[1, 0], [0, 1]], dtype=bool)
        _, n4 = connected_components(sel, connectivity=4)
        _, n8 = connected_components(sel, connectivity=8)
        assert n4 == 2
        assert n8 == 1

    def test_invalid_connectivity(self):
        with pytest.raises(ConfigurationError):
            connected_components(np.ones((2, 2), dtype=bool), connectivity=6)


class TestW2:
    def test_bigger_cluster_bigger_weight(self):
        """The paper's Fig. 5 example: a 4-cell cluster outweighs a
        2-cell cluster."""
        sel = np.zeros((5, 5), dtype=bool)
        sel[0, 0:2] = True        # 2-cell cluster
        sel[3:5, 3:5] = True      # 4-cell cluster
        w2 = compute_w2(sel)
        assert w2[3, 3] == 4.0
        assert w2[0, 0] == 2.0
        assert w2[1, 1] == 0.0

    def test_empty_selection_all_zero(self):
        w2 = compute_w2(np.zeros((3, 3), dtype=bool))
        np.testing.assert_array_equal(w2, 0.0)

    def test_uniform_within_cluster(self):
        sel = np.zeros((4, 4), dtype=bool)
        sel[1:3, 1:3] = True
        w2 = compute_w2(sel)
        vals = w2[sel]
        assert np.all(vals == vals[0])

    @given(
        arrays(np.bool_, (6, 6), elements=st.booleans()),
    )
    @settings(max_examples=30, deadline=None)
    def test_w2_counts_sum_to_squared_sizes(self, sel):
        """Sum of per-cell cluster sizes equals sum of size^2 over clusters."""
        labels, n = connected_components(sel)
        w2 = compute_w2(sel)
        expected = sum(
            float(np.sum(labels == i)) ** 2 for i in range(1, n + 1)
        )
        assert w2.sum() == pytest.approx(expected)


class TestCombine:
    def test_normalized_to_one(self):
        w1 = np.array([[1.0, 2.0], [0.0, 3.0]])
        w2 = np.array([[2.0, 2.0], [0.0, 1.0]])
        w = combine_weights(w1, w2)
        assert w.sum() == pytest.approx(1.0)
        assert w[1, 0] == 0.0

    def test_w2_none_uses_w1_only(self):
        w1 = np.array([[1.0, 3.0]])
        w = combine_weights(w1, None)
        np.testing.assert_allclose(w, [[0.25, 0.75]])

    def test_empty_support_raises(self):
        with pytest.raises(EstimationError):
            combine_weights(np.zeros((2, 2)), None)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_weights(np.array([[-1.0, 2.0]]), None)

    @given(
        arrays(np.float64, (4, 4), elements=st.floats(0.0, 10.0)),
        arrays(np.float64, (4, 4), elements=st.floats(0.0, 10.0)),
    )
    @settings(max_examples=40, deadline=None)
    def test_convexity_property(self, w1, w2):
        if (w1 * w2).sum() <= 0:
            return
        w = combine_weights(w1, w2)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)
