"""Tests for repro.zones.failover: supervision, respawn, admission.

The contract under test (docs/ZONES.md, "Failover"):

* empty fault plan → the supervised loop is byte-identical to the bare
  gateway loop (and hence to every pre-failover golden witness);
* zone crash with respawn → byte-identical to the uninterrupted run
  (cold respawn replays the full journal; checkpointed respawn resumes
  from the zone's WAL and replays the gap);
* zone permanently down → explicit degradation: gateway-interim answers
  (``reason="zone_down"``), rerouted handoffs, availability < 1 — never
  a silent drop;
* admission control and saturation shedding are deterministic and
  counted.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    SlowZoneFault,
    WorkerHangFault,
    ZoneCrashFault,
    ZoneLinkLossFault,
    is_zone_fault,
    zone_chaos_preset,
)
from repro.runtime.policy import RetryPolicy, RuntimePolicy
from repro.service.pipeline import ServiceConfig
from repro.zones import (
    INTERIM_ESTIMATOR,
    ZONE_DOWN_REASON,
    AdmissionPolicy,
    RoamingTag,
    TokenBucket,
    ZoneFailoverPolicy,
    ZoneGateway,
    scaled_site_plan,
    slice_fault_plan,
)


def _config(**kw) -> ServiceConfig:
    kw.setdefault("query_interval_s", 1.0)
    return ServiceConfig(**kw)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


def _roaming_plan(n_zones: int = 2, *, x_end: float = 6.0):
    tag = RoamingTag(
        label="roam-0",
        route=((0.0, (1.5, 1.5)), (6.0, (x_end, 1.5))),
    )
    return dataclasses.replace(
        scaled_site_plan("Env1", n_zones, seed=0), roaming=(tag,)
    )


def _no_sleep(_s: float) -> None:
    return None


CRASH_Z0 = FaultPlan(faults=(ZoneCrashFault(zone_id="z0", at_s=3.0),))


@pytest.fixture(scope="module")
def baseline_witness() -> str:
    """Uninterrupted 2-zone roaming run (default supervised gateway)."""
    report = ZoneGateway(_roaming_plan(), _config()).run(6.0)
    assert report.handoffs, "route must cross the zone boundary"
    return _witness(report)


class TestRetryPolicyConsolidation:
    def test_backoff_is_geometric(self):
        policy = RetryPolicy(deadline_s=1.0, backoff_base_s=0.05,
                             backoff_multiplier=2.0)
        assert [policy.backoff_s(a) for a in (1, 2, 3)] == [0.05, 0.1, 0.2]

    def test_runtime_policy_exposes_retry_view(self):
        runtime = RuntimePolicy(shard_timeout_s=3.0, max_retries=4,
                                backoff_base_s=0.01)
        retry = runtime.retry
        assert isinstance(retry, RetryPolicy)
        assert retry.deadline_s == 3.0
        assert retry.max_retries == 4
        assert retry.backoff_s(2) == runtime.backoff_s(2)

    def test_failover_policy_embeds_retry(self):
        policy = ZoneFailoverPolicy()
        assert isinstance(policy.retry, RetryPolicy)
        assert policy.retry.deadline_s == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ZoneFailoverPolicy(max_respawns=-1)


class TestZoneFaultModels:
    def test_zone_faults_are_scope_tagged(self):
        for fault in (
            ZoneCrashFault("z0", at_s=1.0),
            WorkerHangFault("z0", at_s=1.0),
            ZoneLinkLossFault("z0", start_s=1.0, duration_s=2.0),
            SlowZoneFault("z0", start_s=1.0, duration_s=2.0),
        ):
            assert is_zone_fault(fault)

    def test_record_injector_rejects_zone_faults(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(CRASH_Z0)

    def test_slice_fault_plan_drops_zone_faults(self):
        assert len(slice_fault_plan(CRASH_Z0, "z0")) == 0

    def test_zone_chaos_presets(self):
        crash = zone_chaos_preset("crash", zone_id="z3", start_s=5.0)
        assert len(crash) == 1
        (fault,) = tuple(crash)
        assert isinstance(fault, ZoneCrashFault)
        assert fault.zone_id == "z3" and fault.at_s == 5.0
        assert len(zone_chaos_preset("none")) == 0
        for name, cls in (
            ("hang", WorkerHangFault),
            ("partition", ZoneLinkLossFault),
            ("brownout", SlowZoneFault),
        ):
            (fault,) = tuple(zone_chaos_preset(name))
            assert isinstance(fault, cls)

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            ZoneCrashFault("", at_s=1.0)
        with pytest.raises(ConfigurationError):
            ZoneCrashFault("z0", at_s=-1.0)
        with pytest.raises(ConfigurationError):
            ZoneLinkLossFault("z0", start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            SlowZoneFault("z0", start_s=0.0, duration_s=1.0, factor=1.0)


class TestFailoverIdentity:
    """Supervision is invisible unless a fault actually fires."""

    def test_empty_plan_matches_bare_loop(self, baseline_witness):
        bare = ZoneGateway(_roaming_plan(), _config(), failover=None)
        assert _witness(bare.run(6.0)) == baseline_witness

    def test_crash_cold_respawn_is_byte_identical(self, baseline_witness):
        report = ZoneGateway(
            _roaming_plan(), _config(), fault_plan=CRASH_Z0
        ).run(6.0)
        assert _witness(report) == baseline_witness
        assert report.summary["zone_crashes"] == 1.0
        assert report.summary["zone_respawns"] == 1.0
        assert report.summary["availability"] == 1.0

    def test_crash_checkpointed_respawn_is_byte_identical(self, tmp_path):
        clean_dir = tmp_path / "clean"
        crash_dir = tmp_path / "crash"
        clean_dir.mkdir()
        crash_dir.mkdir()
        clean = ZoneGateway(
            _roaming_plan(), _config(), checkpoint_dir=str(clean_dir)
        ).run(6.0)
        crashed = ZoneGateway(
            _roaming_plan(), _config(), fault_plan=CRASH_Z0,
            checkpoint_dir=str(crash_dir),
        ).run(6.0)
        assert _witness(crashed) == _witness(clean)
        assert crashed.summary["zone_respawns"] == 1.0

    def test_hang_times_out_retries_then_respawns(self, baseline_witness):
        backoffs: list[float] = []
        plan = FaultPlan(faults=(WorkerHangFault(zone_id="z0", at_s=3.0),))
        report = ZoneGateway(
            _roaming_plan(), _config(), fault_plan=plan,
            sleep=backoffs.append,
        ).run(6.0)
        assert _witness(report) == baseline_witness
        # deadline_s=5.0, max_retries=2: initial call + 2 retries all
        # time out, with geometric backoff between attempts.
        assert report.summary["zone_timeouts"] == 3.0
        assert report.summary["zone_retries"] == 2.0
        assert backoffs == [0.05, 0.1]

    def test_link_loss_catches_up_byte_identical(self, baseline_witness):
        # Window chosen to not overlap the handoff: the zone falls
        # behind the gateway clock, then replays the journaled calls at
        # the chunks they were issued against.
        plan = FaultPlan(faults=(
            ZoneLinkLossFault(zone_id="z0", start_s=0.5, duration_s=1.0),
        ))
        report = ZoneGateway(
            _roaming_plan(), _config(), fault_plan=plan, sleep=_no_sleep
        ).run(6.0)
        assert _witness(report) == baseline_witness
        assert report.summary["zone_link_failures"] > 0

    def test_link_loss_over_handoff_is_deterministic(self):
        plan = FaultPlan(faults=(
            ZoneLinkLossFault(zone_id="z0", start_s=2.0, duration_s=2.0),
        ))
        runs = [
            _witness(
                ZoneGateway(
                    _roaming_plan(), _config(), fault_plan=plan,
                    sleep=_no_sleep,
                ).run(6.0)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestZoneDownDegradation:
    """No respawn budget: explicit interim serving, never silence."""

    @pytest.fixture(scope="class")
    def down_report(self):
        policy = ZoneFailoverPolicy(respawn=False)
        return ZoneGateway(
            _roaming_plan(), _config(), fault_plan=CRASH_Z0,
            failover=policy,
        ).run(6.0)

    def test_zone_marked_down_and_availability_drops(self, down_report):
        s = down_report.summary
        assert s["zones_down"] == 1.0
        assert s["zone_respawns"] == 0.0
        assert 0.0 < s["availability"] < 1.0

    def test_interim_results_are_explicitly_degraded(self, down_report):
        assert down_report.interim
        for result in down_report.interim:
            assert result.estimator == INTERIM_ESTIMATOR
            assert result.degraded
            assert result.reason == ZONE_DOWN_REASON
        assert down_report.summary["interim_results"] == float(
            len(down_report.interim)
        )

    def test_witness_records_interim_block(self, down_report):
        doc = down_report.witness_document()
        assert doc["n_interim"] == len(down_report.interim)
        assert len(doc["interim"]) == len(down_report.interim)
        assert doc["interim"][0]["reason"] == ZONE_DOWN_REASON

    def test_faultfree_witness_has_no_interim_block(self, baseline_witness):
        doc = json.loads(baseline_witness)
        assert "interim" not in doc
        assert "n_interim" not in doc

    def test_roaming_tag_is_rerouted_not_dropped(self, down_report):
        # The tag was activated in z0, which died at t=3 and never came
        # back: ownership must move to z1 with the cached estimate.
        moves = [
            (h.from_zone, h.to_zone, h.carried_source)
            for h in down_report.handoffs
            if h.tag == "roam-0"
        ]
        assert ("z0", "z1", "cache") in moves
        # After the handoff the tag keeps producing *live* results.
        z1_results = [
            r for r in down_report.zones["z1"].results
            if r.tag_id == "tag-roam-0"
        ]
        assert z1_results

    def test_down_zone_report_is_flagged(self, down_report):
        summary = down_report.zones["z0"].summary
        assert summary["zone_down"] == 1.0


class TestSaturationShedding:
    def test_preferred_zone_saturated_reroutes_handoff(self):
        # z0 dies (no respawn) while z1 — the tag's nearest zone — is
        # browned out: the handoff must land on z2 and say why.
        plan3 = dataclasses.replace(
            scaled_site_plan("Env1", 3, seed=0),
            roaming=(RoamingTag(
                label="roam-0",
                route=((0.0, (1.5, 1.5)), (6.0, (5.0, 1.5))),
            ),),
        )
        faults = FaultPlan(faults=(
            ZoneCrashFault(zone_id="z0", at_s=2.0),
            SlowZoneFault(zone_id="z1", start_s=0.0, duration_s=10.0),
        ))
        policy = ZoneFailoverPolicy(
            respawn=False,
            admission=AdmissionPolicy(saturation_shed=True),
        )
        report = ZoneGateway(
            plan3, _config(), fault_plan=faults, failover=policy
        ).run(6.0)
        rerouted = [h for h in report.handoffs if h.rerouted_from]
        assert rerouted
        assert rerouted[0].to_zone == "z2"
        assert report.summary["handoffs_rerouted"] == float(len(rerouted))
        entry = report.witness_document()["handoffs"][0]
        assert entry["rerouted_from"]
        assert entry["carried_source"] == "cache"

    def test_saturated_zone_sheds_queries_deterministically(self):
        plan = FaultPlan(faults=(
            SlowZoneFault(zone_id="z1", start_s=1.0, duration_s=10.0),
        ))
        policy = ZoneFailoverPolicy(
            admission=AdmissionPolicy(saturation_shed=True)
        )

        def run():
            return ZoneGateway(
                _roaming_plan(), _config(), fault_plan=plan,
                failover=policy,
            ).run(6.0)

        a, b = run(), run()
        assert a.summary["requests_shed"] > 0
        assert a.summary["zone_slow_ticks"] > 0
        assert _witness(a) == _witness(b)
        # Shed queries really were not served.
        clean = ZoneGateway(_roaming_plan(), _config()).run(6.0)
        assert a.summary["results"] < clean.summary["results"]


class TestAdmissionControl:
    def test_token_bucket_refills_on_the_sim_clock(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=2)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.5)
        assert bucket.try_acquire(1.5)
        # Long idle: the refill caps at the burst size.
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_admission_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(burst=0)

    def test_rate_limit_sheds_and_advances_schedule(self):
        policy = ZoneFailoverPolicy(
            admission=AdmissionPolicy(rate_per_s=0.5, burst=1)
        )
        limited = ZoneGateway(
            _roaming_plan(), _config(), failover=policy
        ).run(6.0)
        clean = ZoneGateway(_roaming_plan(), _config()).run(6.0)
        assert limited.summary["requests_shed"] > 0
        assert limited.summary["results"] < clean.summary["results"]
        # Deterministic: same policy, same sheds.
        again = ZoneGateway(
            _roaming_plan(), _config(), failover=policy
        ).run(6.0)
        assert _witness(again) == _witness(limited)

    def test_admission_with_checkpoints_is_rejected(self, tmp_path):
        policy = ZoneFailoverPolicy(admission=AdmissionPolicy())
        gateway = ZoneGateway(
            _roaming_plan(), _config(), failover=policy,
            checkpoint_dir=str(tmp_path),
        )
        with pytest.raises(ConfigurationError):
            gateway.run(4.0)


class TestGatewayGuards:
    def test_zone_faults_require_failover(self):
        with pytest.raises(ConfigurationError):
            ZoneGateway(
                _roaming_plan(), _config(), fault_plan=CRASH_Z0,
                failover=None,
            )

    def test_zone_faults_reject_parallel(self):
        plan = scaled_site_plan("Env1", 2, seed=0)
        gateway = ZoneGateway(plan, _config(), fault_plan=CRASH_Z0)
        with pytest.raises(ConfigurationError):
            gateway.run(4.0, parallel=True)

    def test_admission_rejects_parallel(self):
        plan = scaled_site_plan("Env1", 2, seed=0)
        policy = ZoneFailoverPolicy(admission=AdmissionPolicy())
        gateway = ZoneGateway(plan, _config(), failover=policy)
        with pytest.raises(ConfigurationError):
            gateway.run(4.0, parallel=True)


class TestGatewayMetricsNaming:
    """Satellite regression: queue counters are zone-namespaced and the
    gateway block renders under its own ``repro_gateway_`` namespace."""

    def test_prometheus_names(self):
        report = ZoneGateway(
            scaled_site_plan("Env1", 2, seed=0), _config()
        ).run(3.0)
        prom = report.render_prometheus()
        for zid in ("z0", "z1"):
            assert f"repro_zone_{zid}_ingest_records_dropped_total" in prom
            assert f"repro_zone_{zid}_ingest_records_shed_total" in prom
        assert "repro_gateway_zone_crashes_total" in prom
        assert "repro_gateway_zone_respawns_total" in prom
        assert "repro_gateway_requests_shed_total" in prom
        assert "repro_gateway_availability" in prom
        # No un-namespaced leakage from the gateway registry.
        assert "\nrepro_zone_crashes_total" not in prom

    def test_summary_counters_present(self):
        report = ZoneGateway(
            scaled_site_plan("Env1", 2, seed=0), _config()
        ).run(3.0)
        for key in (
            "availability", "zone_crashes", "zone_respawns",
            "zone_timeouts", "zone_link_failures", "zones_down",
            "requests_shed", "handoffs_rerouted", "interim_results",
        ):
            assert key in report.summary


class TestFailoverCLI:
    def test_kill_zone_run_matches_clean_run(self, capsys, tmp_path):
        from repro.cli import main

        def run(extra):
            main([
                "serve", "--env", "Env1", "--zones", "2",
                "--duration", "4", "--query-interval", "1",
                "--seed", "0", "--json", *extra,
            ])
            return json.loads(capsys.readouterr().out)

        clean = run([])
        killed = run([
            "--kill-zone", "z0@2.0",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ])
        assert killed["failover"]["zone_respawns"] == 1
        assert killed["failover"]["availability"] == 1.0
        # Recovery witness: identical answers; the clean run carries no
        # supervision block at all.
        assert "failover" not in clean
        killed.pop("failover")
        assert killed == clean

    def test_no_failover_flag_matches_supervised(self, capsys):
        from repro.cli import main

        def run(extra):
            main([
                "serve", "--env", "Env1", "--zones", "2",
                "--duration", "3", "--query-interval", "1", "--json",
                *extra,
            ])
            out = json.loads(capsys.readouterr().out)
            out.pop("failover", None)
            return out

        assert run(["--no-failover"]) == run([])

    def test_kill_zone_flag_validation(self, capsys):
        from repro.cli import main

        for argv in (
            ["serve", "--kill-zone", "z0@2.0"],  # requires --zones
            ["serve", "--zones", "2", "--kill-zone", "z0"],
            ["serve", "--zones", "2", "--kill-zone", "z0@soon"],
            ["serve", "--zones", "2", "--kill-zone", "z9@1.0"],
            ["serve", "--zones", "2", "--resume"],
        ):
            assert main(argv) == 2, argv
            err = capsys.readouterr().err
            assert err.startswith("error:"), argv

    def test_chaos_zones_json_is_deterministic(self, capsys):
        from repro.cli import main

        def run():
            main([
                "chaos", "--env", "Env1", "--zones", "2",
                "--duration", "6", "--preset", "none",
                "--zone-preset", "crash", "--zone-id", "z0",
                "--zone-fault-start", "3",
                "--json",
            ])
            return capsys.readouterr().out

        first, second = run(), run()
        assert first == second
        doc = json.loads(first)
        assert doc["zone_crashes"] == 1
        assert doc["zone_respawns"] == 1
        assert doc["availability"] == 1.0
