"""Regenerate the golden-trace fixtures under ``tests/golden/``.

Usage (repo root)::

    PYTHONPATH=src python -m tests.regen_golden

The golden traces pin **byte-exact** outputs of the estimation pipeline
— coordinates, thresholds and weight matrices are stored as IEEE-754
hex strings / SHA-256 digests, so ``tests/test_golden_traces.py`` fails
on a single-ULP drift in any of them. Three scenarios are traced:

* ``paper_config.json`` — the paper's clean Env3 testbed, one frozen
  trial, all nine Fig. 2(a) tracking tags, default
  ``VIREConfig(target_total_tags=900)``;
* ``masked_reading.json`` — the same readings with deterministic NaN
  holes (degraded deployments): quorum trimming, hole imputation and
  the relax fallback are all on the traced path;
* ``chaos_preset.json`` — a short chaotic streaming session (moderate
  fault preset) through the full service stack: middleware, breakers,
  batch engine and the degradation ladder;
* ``trace_serve.json`` — the **logical span forest** of that same chaotic
  session recorded through :class:`repro.obs.Tracer`: every ladder
  decision (level/reason/estimator), cache hit/miss delta and batch
  trigger is pinned, so control-flow changes cannot land silently;
* ``trace_fig6.json`` — the logical ``vire.estimate`` span trees for one
  frozen trial of the Fig. 6 scenario in all three environments
  (thresholds, selected-cell counts, fallbacks).

Regenerate **only** when a numerical change is intentional, and say why
in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.config import VIREConfig
from repro.core.elimination import eliminate
from repro.core.estimator import VIREEstimator
from repro.core.proximity import build_proximity_maps, rssi_deviations
from repro.core.threshold import minimal_feasible_threshold
from repro.core.weighting import combine_weights, compute_w1, compute_w2
from repro.exceptions import ReproError
from repro.experiments.measurement import TrialSampler
from repro.experiments.scenarios import paper_scenario
from repro.rf.environments import env3

GOLDEN_DIR = Path(__file__).parent / "golden"

PAPER_SEED = 0
MASK_SEED = 2024
CHAOS_SEED = 13
CHAOS_DURATION_S = 8.0


def _hex(value: float) -> str:
    return float(value).hex()


def require_exact_precision(config) -> None:
    """Refuse to build byte-stable fixtures off a non-exact engine tier.

    Golden fixtures pin IEEE-754 bit patterns; only the engine's
    bitwise-exact tier can produce them. ``precision="relaxed"`` here is
    always a mistake — fail loudly instead of pinning float32 bits.
    """
    from repro.exceptions import ConfigurationError

    if config.engine.precision != "exact":
        raise ConfigurationError(
            "golden fixtures require engine precision 'exact', "
            f"got {config.engine.precision!r}"
        )


def paper_estimator() -> VIREEstimator:
    scenario = paper_scenario(env3(), n_trials=1, base_seed=PAPER_SEED)
    return VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900))


def paper_readings():
    """The frozen trial-0 readings for all nine Fig. 2(a) tags."""
    scenario = paper_scenario(env3(), n_trials=1, base_seed=PAPER_SEED)
    sampler = TrialSampler(
        scenario.environment,
        scenario.grid,
        seed=scenario.trial_seed(0),
        measurement=scenario.measurement,
    )
    labels = list(scenario.tracking_tags)
    positions = [scenario.tracking_tags[label] for label in labels]
    readings = [sampler.reading_for(pos) for pos in positions]
    return labels, positions, readings


def masked_readings():
    """The paper readings with deterministic NaN holes punched in.

    Every third tag additionally loses one whole reader, which pushes
    the reading through quorum trimming.
    """
    labels, positions, readings = paper_readings()
    rng = np.random.default_rng(MASK_SEED)
    masked = []
    for i, reading in enumerate(readings):
        ref = reading.reference_rssi.copy()
        holes = rng.random(ref.shape) < (0.08 + 0.12 * (i % 3))
        ref[holes] = np.nan
        if i % 3 == 2:
            ref[i % reading.n_readers] = np.nan  # one reader fully dark
        masked.append(replace(reading, reference_rssi=ref, masked=True))
    return labels, positions, masked


def trace_weights(est: VIREEstimator, reading) -> tuple[str | None, dict]:
    """SHA-256 of the normalized weight matrix plus step diagnostics.

    Re-runs the scalar pipeline step by step (the exact code
    ``estimate()`` uses) so the trace pins the *intermediate* weight
    tensor, not only the final centroid. Returns ``(None, {})`` when the
    reading takes the LANDMARC fallback (no weight matrix exists).
    """
    min_votes = est.config.min_votes
    if reading.masked:
        reading = est.quorum.apply(reading).reading
        if min_votes is not None:
            min_votes = min(min_votes, reading.n_readers)
    virtual = est.interpolate_reading(reading)
    deviations = rssi_deviations(virtual, reading.tracking_rssi)
    threshold = est.select_threshold(deviations)
    maps = build_proximity_maps(deviations, threshold)
    selected = eliminate(maps, min_votes=min_votes)
    if not selected.any():
        if est.config.empty_fallback != "relax":
            return None, {}
        threshold = minimal_feasible_threshold(
            deviations, min_cells=est.config.min_cells
        )
        maps = build_proximity_maps(deviations, threshold)
        selected = eliminate(maps, min_votes=min_votes)
    w1 = compute_w1(
        deviations,
        selected,
        mode=est.config.w1_mode,
        virtual_rssi=virtual if est.config.w1_mode == "paper-literal" else None,
    )
    w2 = (
        compute_w2(selected, connectivity=est.config.connectivity)
        if est.config.use_w2
        else None
    )
    weights = combine_weights(w1, w2)
    digest = hashlib.sha256(np.ascontiguousarray(weights).tobytes()).hexdigest()
    return digest, {"weights_threshold_db_hex": _hex(threshold)}


def _trace_entries(est: VIREEstimator, labels, positions, readings) -> list:
    entries = []
    for label, true_pos, reading in zip(labels, positions, readings):
        entry: dict = {"label": int(label), "true_position": list(true_pos)}
        try:
            result = est.estimate(reading)
        except ReproError as exc:
            entry["error"] = type(exc).__name__
            entry["message"] = str(exc)
            entries.append(entry)
            continue
        diag = result.diagnostics
        entry.update(
            position_hex=[_hex(result.position[0]), _hex(result.position[1])],
            threshold_db_hex=_hex(diag["threshold_db"]),
            n_selected=int(diag["n_selected"]),
            map_areas=[int(a) for a in diag.get("map_areas", [])]
            if diag.get("map_areas") is not None
            else None,
            fallback=diag.get("fallback"),
        )
        digest, extra = trace_weights(est, reading)
        entry["weights_sha256"] = digest
        entry.update(extra)
        entries.append(entry)
    return entries


def build_paper_trace() -> dict:
    labels, positions, readings = paper_readings()
    est = paper_estimator()
    return {
        "scenario": "paper-config: clean Env3, trial 0, "
        "VIREConfig(target_total_tags=900)",
        "seed": PAPER_SEED,
        "tags": _trace_entries(est, labels, positions, readings),
    }


def build_masked_trace() -> dict:
    labels, positions, readings = masked_readings()
    est = paper_estimator()
    return {
        "scenario": "masked-reading: paper readings with deterministic NaN "
        f"holes (mask seed {MASK_SEED}), quorum + imputation on the path",
        "seed": PAPER_SEED,
        "mask_seed": MASK_SEED,
        "tags": _trace_entries(est, labels, positions, readings),
    }


def run_chaos_session(tracer=None):
    """The frozen chaotic service session behind two golden fixtures.

    ``chaos_preset.json`` pins its results bit-exactly;
    ``trace_serve.json`` pins the logical span forest of the same run
    (``tracer`` must then be a :class:`repro.obs.Tracer`). The tracer
    must never perturb the answers — ``tests/test_golden_traces.py``
    asserts exactly that by comparing the traced run's results against
    the untraced fixture.
    """
    from repro.faults import chaos_preset
    from repro.hardware.deployment import build_paper_deployment
    from repro.hardware.middleware import SmoothingSpec
    from repro.service import LocalizationService, ServiceConfig

    from tests.conftest import make_clean_environment

    tracking = {"asset": (1.3, 1.7), "cart": (2.4, 0.9)}

    class _Scenario:
        name = "golden-chaos"
        tracking_tags = tracking

    class _Service(LocalizationService):
        def build_deployment(self, scenario):  # noqa: ARG002 - fixed world
            return build_paper_deployment(
                make_clean_environment(),
                tracking_tags={f"tag-{k}": p for k, p in tracking.items()},
                seed=CHAOS_SEED,
                smoothing=SmoothingSpec(max_age_s=6.0),
            )

    config = ServiceConfig(
        query_interval_s=1.0,
        stream_step_s=0.5,
        request_deadline_s=None,
        breaker_recovery_timeout_s=8.0,
        vire=VIREConfig(subdivisions=5),
    )
    require_exact_precision(config)
    plan = chaos_preset("moderate", seed=CHAOS_SEED)
    return _Service(config).run(
        _Scenario(), CHAOS_DURATION_S, fault_plan=plan, tracer=tracer
    )


def chaos_result_docs(report) -> list:
    """The bit-exact result documents stored in ``chaos_preset.json``."""
    return [
        {
            "tag_id": r.tag_id,
            "position_hex": [_hex(r.position[0]), _hex(r.position[1])],
            "estimator": r.estimator,
            "degraded": bool(r.degraded),
            "reason": r.reason,
        }
        for r in report.results
    ]


def build_chaos_trace() -> dict:
    """A short chaotic service session, positions pinned bit-exactly."""
    report = run_chaos_session()
    return {
        "scenario": "chaos-preset: moderate faults, clean-room paper "
        f"deployment, {CHAOS_DURATION_S}s session (seed {CHAOS_SEED})",
        "seed": CHAOS_SEED,
        "duration_s": CHAOS_DURATION_S,
        "results": chaos_result_docs(report),
    }


def build_trace_serve() -> dict:
    """Logical span forest of the chaotic serve session.

    Pins every control-flow decision the service makes: batch flush
    triggers, ladder level/reason/estimator per serve, interpolation
    cache hit/miss deltas, degradation spans. Wall-clock annotations are
    stripped (:meth:`repro.obs.Tracer.logical_documents`), so the
    fixture is a pure function of the seed.
    """
    from repro.obs import Tracer

    tracer = Tracer()
    run_chaos_session(tracer=tracer)
    return {
        "scenario": "trace-serve: logical span forest of the chaos-preset "
        f"session (seed {CHAOS_SEED}) — ladder, cache and batch decisions",
        "seed": CHAOS_SEED,
        "duration_s": CHAOS_DURATION_S,
        "spans": tracer.logical_documents(),
    }


def build_trace_fig6() -> dict:
    """Logical ``vire.estimate`` span trees for the Fig. 6 scenario.

    One frozen trial per environment, all nine tracking tags, the
    Fig. 6 operating point (``default_vire_config``): thresholds,
    selected-cell counts and relax fallbacks are pinned per tag per
    environment without the cost of the full 20-trial figure run.
    """
    from repro.experiments.figures import default_vire_config
    from repro.geometry.placement import paper_testbed_grid
    from repro.obs import Tracer, use_tracer
    from repro.rf.environments import env1, env2

    grid = paper_testbed_grid()
    environments = {}
    for factory in (env1, env2, env3):
        env = factory()
        scenario = paper_scenario(env, n_trials=1, base_seed=PAPER_SEED)
        sampler = TrialSampler(
            scenario.environment,
            scenario.grid,
            seed=scenario.trial_seed(0),
            measurement=scenario.measurement,
        )
        est = VIREEstimator(grid, default_vire_config())
        tracer = Tracer()
        with use_tracer(tracer):
            for label in scenario.tracking_tags:
                reading = sampler.reading_for(scenario.tracking_tags[label])
                try:
                    est.estimate(reading)
                except ReproError:
                    pass  # the span still records the error class
        environments[env.name] = tracer.logical_documents()
    return {
        "scenario": "trace-fig6: logical vire.estimate span trees, one "
        f"frozen trial (seed {PAPER_SEED}) per environment",
        "seed": PAPER_SEED,
        "environments": environments,
    }


LOADTEST_SEED = 17
LOADTEST_DURATION_S = 5.0


def loadtest_sweep_profiles():
    """The two frozen sweep points behind ``report_capacity.json``."""
    from repro.loadtest import LoadProfile

    base = LoadProfile(
        name="golden", process="burst", environment="Env1",
        duration_s=LOADTEST_DURATION_S, seed=LOADTEST_SEED,
    )
    return (
        base.with_(name="golden-x1", rate_per_s=4.0),
        base.with_(name="golden-x2", rate_per_s=8.0),
    )


def build_report_schedule() -> dict:
    """Canonical arrival schedule of a bursty profile.

    Pins the traffic generator itself: every arrival time (9-decimal
    rounded), zone id and tag label of the derived RNG streams. Any
    change to the thinning loop, the stream derivation keys or the
    label draws shows up as a byte diff here.
    """
    from repro.loadtest import generate_schedule

    profile = loadtest_sweep_profiles()[0].with_(n_zones=2)
    schedule = generate_schedule(profile)
    return {
        "scenario": "report-schedule: canonical burst arrival schedule, "
        f"2 zones (seed {LOADTEST_SEED})",
        "digest_sha256": schedule.digest(),
        "schedule": schedule.canonical_document(),
    }


def build_report_capacity() -> dict:
    """Canonical capacity report of a tiny frozen load sweep.

    Two bursty sweep points through the real single-zone harness (cheap
    ``subdivisions=5`` world), fed to every registered figure builder.
    Wall-clock never enters: the sweep points are witness documents and
    the fit is the pure-Python least-squares solver.
    """
    from repro.analysis.registry import build_capacity_report
    from repro.loadtest import run_load_test
    from repro.service import ServiceConfig

    config = ServiceConfig(vire=VIREConfig(subdivisions=5))
    require_exact_precision(config)
    points = [
        run_load_test(profile, config=config).witness_document()
        for profile in loadtest_sweep_profiles()
    ]
    return {
        "scenario": "report-capacity: figure-registry output over a two-"
        f"point frozen burst sweep (seed {LOADTEST_SEED})",
        "seed": LOADTEST_SEED,
        "report": build_capacity_report(
            points, meta={"seed": LOADTEST_SEED}
        ),
    }


BUILDERS = {
    "paper_config.json": build_paper_trace,
    "masked_reading.json": build_masked_trace,
    "chaos_preset.json": build_chaos_trace,
    "trace_serve.json": build_trace_serve,
    "trace_fig6.json": build_trace_fig6,
    "report_schedule.json": build_report_schedule,
    "report_capacity.json": build_report_capacity,
}


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in BUILDERS.items():
        path = GOLDEN_DIR / name
        trace = builder()
        path.write_text(json.dumps(trace, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
