"""Regenerate the golden-trace fixtures under ``tests/golden/``.

Usage (repo root)::

    PYTHONPATH=src python -m tests.regen_golden

The golden traces pin **byte-exact** outputs of the estimation pipeline
— coordinates, thresholds and weight matrices are stored as IEEE-754
hex strings / SHA-256 digests, so ``tests/test_golden_traces.py`` fails
on a single-ULP drift in any of them. Three scenarios are traced:

* ``paper_config.json`` — the paper's clean Env3 testbed, one frozen
  trial, all nine Fig. 2(a) tracking tags, default
  ``VIREConfig(target_total_tags=900)``;
* ``masked_reading.json`` — the same readings with deterministic NaN
  holes (degraded deployments): quorum trimming, hole imputation and
  the relax fallback are all on the traced path;
* ``chaos_preset.json`` — a short chaotic streaming session (moderate
  fault preset) through the full service stack: middleware, breakers,
  batch engine and the degradation ladder.

Regenerate **only** when a numerical change is intentional, and say why
in the commit message.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.config import VIREConfig
from repro.core.elimination import eliminate
from repro.core.estimator import VIREEstimator
from repro.core.proximity import build_proximity_maps, rssi_deviations
from repro.core.threshold import minimal_feasible_threshold
from repro.core.weighting import combine_weights, compute_w1, compute_w2
from repro.exceptions import ReproError
from repro.experiments.measurement import TrialSampler
from repro.experiments.scenarios import paper_scenario
from repro.rf.environments import env3

GOLDEN_DIR = Path(__file__).parent / "golden"

PAPER_SEED = 0
MASK_SEED = 2024
CHAOS_SEED = 13
CHAOS_DURATION_S = 8.0


def _hex(value: float) -> str:
    return float(value).hex()


def paper_estimator() -> VIREEstimator:
    scenario = paper_scenario(env3(), n_trials=1, base_seed=PAPER_SEED)
    return VIREEstimator(scenario.grid, VIREConfig(target_total_tags=900))


def paper_readings():
    """The frozen trial-0 readings for all nine Fig. 2(a) tags."""
    scenario = paper_scenario(env3(), n_trials=1, base_seed=PAPER_SEED)
    sampler = TrialSampler(
        scenario.environment,
        scenario.grid,
        seed=scenario.trial_seed(0),
        measurement=scenario.measurement,
    )
    labels = list(scenario.tracking_tags)
    positions = [scenario.tracking_tags[label] for label in labels]
    readings = [sampler.reading_for(pos) for pos in positions]
    return labels, positions, readings


def masked_readings():
    """The paper readings with deterministic NaN holes punched in.

    Every third tag additionally loses one whole reader, which pushes
    the reading through quorum trimming.
    """
    labels, positions, readings = paper_readings()
    rng = np.random.default_rng(MASK_SEED)
    masked = []
    for i, reading in enumerate(readings):
        ref = reading.reference_rssi.copy()
        holes = rng.random(ref.shape) < (0.08 + 0.12 * (i % 3))
        ref[holes] = np.nan
        if i % 3 == 2:
            ref[i % reading.n_readers] = np.nan  # one reader fully dark
        masked.append(replace(reading, reference_rssi=ref, masked=True))
    return labels, positions, masked


def trace_weights(est: VIREEstimator, reading) -> tuple[str | None, dict]:
    """SHA-256 of the normalized weight matrix plus step diagnostics.

    Re-runs the scalar pipeline step by step (the exact code
    ``estimate()`` uses) so the trace pins the *intermediate* weight
    tensor, not only the final centroid. Returns ``(None, {})`` when the
    reading takes the LANDMARC fallback (no weight matrix exists).
    """
    min_votes = est.config.min_votes
    if reading.masked:
        reading = est.quorum.apply(reading).reading
        if min_votes is not None:
            min_votes = min(min_votes, reading.n_readers)
    virtual = est.interpolate_reading(reading)
    deviations = rssi_deviations(virtual, reading.tracking_rssi)
    threshold = est.select_threshold(deviations)
    maps = build_proximity_maps(deviations, threshold)
    selected = eliminate(maps, min_votes=min_votes)
    if not selected.any():
        if est.config.empty_fallback != "relax":
            return None, {}
        threshold = minimal_feasible_threshold(
            deviations, min_cells=est.config.min_cells
        )
        maps = build_proximity_maps(deviations, threshold)
        selected = eliminate(maps, min_votes=min_votes)
    w1 = compute_w1(
        deviations,
        selected,
        mode=est.config.w1_mode,
        virtual_rssi=virtual if est.config.w1_mode == "paper-literal" else None,
    )
    w2 = (
        compute_w2(selected, connectivity=est.config.connectivity)
        if est.config.use_w2
        else None
    )
    weights = combine_weights(w1, w2)
    digest = hashlib.sha256(np.ascontiguousarray(weights).tobytes()).hexdigest()
    return digest, {"weights_threshold_db_hex": _hex(threshold)}


def _trace_entries(est: VIREEstimator, labels, positions, readings) -> list:
    entries = []
    for label, true_pos, reading in zip(labels, positions, readings):
        entry: dict = {"label": int(label), "true_position": list(true_pos)}
        try:
            result = est.estimate(reading)
        except ReproError as exc:
            entry["error"] = type(exc).__name__
            entry["message"] = str(exc)
            entries.append(entry)
            continue
        diag = result.diagnostics
        entry.update(
            position_hex=[_hex(result.position[0]), _hex(result.position[1])],
            threshold_db_hex=_hex(diag["threshold_db"]),
            n_selected=int(diag["n_selected"]),
            map_areas=[int(a) for a in diag.get("map_areas", [])]
            if diag.get("map_areas") is not None
            else None,
            fallback=diag.get("fallback"),
        )
        digest, extra = trace_weights(est, reading)
        entry["weights_sha256"] = digest
        entry.update(extra)
        entries.append(entry)
    return entries


def build_paper_trace() -> dict:
    labels, positions, readings = paper_readings()
    est = paper_estimator()
    return {
        "scenario": "paper-config: clean Env3, trial 0, "
        "VIREConfig(target_total_tags=900)",
        "seed": PAPER_SEED,
        "tags": _trace_entries(est, labels, positions, readings),
    }


def build_masked_trace() -> dict:
    labels, positions, readings = masked_readings()
    est = paper_estimator()
    return {
        "scenario": "masked-reading: paper readings with deterministic NaN "
        f"holes (mask seed {MASK_SEED}), quorum + imputation on the path",
        "seed": PAPER_SEED,
        "mask_seed": MASK_SEED,
        "tags": _trace_entries(est, labels, positions, readings),
    }


def build_chaos_trace() -> dict:
    """A short chaotic service session, positions pinned bit-exactly."""
    import math  # noqa: F401  (kept for parity with fault tests)

    from repro.faults import chaos_preset
    from repro.hardware.deployment import build_paper_deployment
    from repro.hardware.middleware import SmoothingSpec
    from repro.service import LocalizationService, ServiceConfig

    from tests.conftest import make_clean_environment

    tracking = {"asset": (1.3, 1.7), "cart": (2.4, 0.9)}

    class _Scenario:
        name = "golden-chaos"
        tracking_tags = tracking

    class _Service(LocalizationService):
        def build_deployment(self, scenario):  # noqa: ARG002 - fixed world
            return build_paper_deployment(
                make_clean_environment(),
                tracking_tags={f"tag-{k}": p for k, p in tracking.items()},
                seed=CHAOS_SEED,
                smoothing=SmoothingSpec(max_age_s=6.0),
            )

    config = ServiceConfig(
        query_interval_s=1.0,
        stream_step_s=0.5,
        request_deadline_s=None,
        breaker_recovery_timeout_s=8.0,
        vire=VIREConfig(subdivisions=5),
    )
    plan = chaos_preset("moderate", seed=CHAOS_SEED)
    report = _Service(config).run(_Scenario(), CHAOS_DURATION_S, fault_plan=plan)
    results = [
        {
            "tag_id": r.tag_id,
            "position_hex": [_hex(r.position[0]), _hex(r.position[1])],
            "estimator": r.estimator,
            "degraded": bool(r.degraded),
            "reason": r.reason,
        }
        for r in report.results
    ]
    return {
        "scenario": "chaos-preset: moderate faults, clean-room paper "
        f"deployment, {CHAOS_DURATION_S}s session (seed {CHAOS_SEED})",
        "seed": CHAOS_SEED,
        "duration_s": CHAOS_DURATION_S,
        "results": results,
    }


BUILDERS = {
    "paper_config.json": build_paper_trace,
    "masked_reading.json": build_masked_trace,
    "chaos_preset.json": build_chaos_trace,
}


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in BUILDERS.items():
        path = GOLDEN_DIR / name
        trace = builder()
        path.write_text(json.dumps(trace, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
