"""Tests for the discrete-event engine and tag/reader primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.hardware.events import EventQueue, SimClock
from repro.hardware.readers import Reader
from repro.hardware.tags import (
    NEW_EQUIPMENT,
    ORIGINAL_EQUIPMENT,
    ActiveTag,
    TagSpec,
)


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_rejects_backwards(self):
        clock = SimClock(now=10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)


class TestEventQueue:
    def test_dispatch_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        assert q.run_until(10.0) == 3
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        fired = []
        for label in "abc":
            q.schedule(1.0, lambda lab=label: fired.append(lab))
        q.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_run_until_partial(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(5))
        assert q.run_until(2.0) == 1
        assert fired == [1]
        assert q.clock.now == 2.0
        assert len(q) == 1

    def test_schedule_in_relative(self):
        q = EventQueue()
        q.run_until(3.0)
        fired = []
        q.schedule_in(2.0, lambda: fired.append(q.clock.now))
        q.run_until(10.0)
        assert fired == [5.0]

    def test_self_rescheduling(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                q.schedule_in(1.0, tick)

        q.schedule(0.0, tick)
        q.run_until(100.0)
        assert count[0] == 5

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.run_until(5.0)
        with pytest.raises(SimulationError):
            q.schedule(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1.0, lambda: None)

    def test_max_events_guard(self):
        q = EventQueue()

        def forever():
            q.schedule_in(0.001, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            q.run_until(10.0, max_events=50)

    def test_run_all_guard(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(float(i), lambda: None)
        assert q.run_all() == 10
        assert q.n_dispatched == 10

    def test_events_at_exact_boundary_included(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append(True))
        q.run_until(2.0)
        assert fired == [True]


class TestTagSpec:
    def test_presets(self):
        assert NEW_EQUIPMENT.beacon_interval_s == 2.0
        assert ORIGINAL_EQUIPMENT.beacon_interval_s == 7.5

    def test_jitter_must_be_smaller_than_interval(self):
        with pytest.raises(ConfigurationError):
            TagSpec(beacon_interval_s=1.0, beacon_jitter_s=1.5)

    def test_battery_validation(self):
        with pytest.raises(ConfigurationError):
            TagSpec(battery_life_beacons=0)


class TestActiveTag:
    def test_construction(self):
        tag = ActiveTag("t1", (1.0, 2.0), is_reference=True)
        assert tag.position == (1.0, 2.0)
        assert tag.is_reference
        assert tag.alive
        assert tag.offset_db == 0.0

    def test_move_to(self):
        tag = ActiveTag("t1", (0.0, 0.0))
        tag.move_to((2.0, 3.0))
        assert tag.position == (2.0, 3.0)

    def test_move_to_nan_rejected(self):
        tag = ActiveTag("t1", (0.0, 0.0))
        with pytest.raises(ConfigurationError):
            tag.move_to((float("nan"), 0.0))

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ActiveTag("", (0.0, 0.0))

    def test_battery_death(self):
        tag = ActiveTag("t1", (0.0, 0.0), TagSpec(battery_life_beacons=2))
        assert tag.alive
        tag.record_beacon()
        assert tag.alive
        tag.record_beacon()
        assert not tag.alive

    def test_beacon_delay_within_jitter(self):
        spec = TagSpec(beacon_interval_s=2.0, beacon_jitter_s=0.2)
        tag = ActiveTag("t1", (0.0, 0.0), spec)
        rng = np.random.default_rng(0)
        delays = [tag.next_beacon_delay(rng) for _ in range(200)]
        assert all(1.8 <= d <= 2.2 for d in delays)

    def test_zero_jitter_deterministic(self):
        spec = TagSpec(beacon_interval_s=2.0, beacon_jitter_s=0.0)
        tag = ActiveTag("t1", (0.0, 0.0), spec)
        assert tag.next_beacon_delay(np.random.default_rng(0)) == 2.0

    def test_with_spec_preserves_identity(self):
        tag = ActiveTag("t1", (1.0, 1.0), is_reference=True)
        clone = tag.with_spec(ORIGINAL_EQUIPMENT)
        assert clone.tag_id == "t1"
        assert clone.is_reference
        assert clone.spec.beacon_interval_s == 7.5


class TestReader:
    def test_receives_strong_frame(self):
        reader = Reader("r0", (0.0, 0.0))
        record = reader.receive("t1", 1.0, -70.0)
        assert record is not None
        assert record.rssi_dbm == -70.0
        assert reader.frames_received == 1

    def test_drops_weak_frame(self):
        reader = Reader("r0", (0.0, 0.0), detection_threshold_dbm=-90.0)
        assert reader.receive("t1", 1.0, -95.0) is None
        assert reader.frames_dropped == 1

    def test_drops_nan(self):
        reader = Reader("r0", (0.0, 0.0))
        assert reader.receive("t1", 1.0, float("nan")) is None

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Reader("", (0.0, 0.0))
