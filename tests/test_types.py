"""Tests for the shared reading/estimate types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import TrackingReading, EstimateResult, estimation_error
from repro.exceptions import ReadingError
from repro.baselines import LandmarcEstimator
from repro.types import Estimator

from .conftest import make_reading


def _valid_reading(k=4, n=16):
    rng = np.random.default_rng(0)
    return TrackingReading(
        reference_rssi=rng.uniform(-90, -50, (k, n)),
        tracking_rssi=rng.uniform(-90, -50, k),
        reference_positions=rng.uniform(0, 3, (n, 2)),
    )


class TestTrackingReading:
    def test_accepts_valid_shapes(self):
        r = _valid_reading()
        assert r.n_readers == 4
        assert r.n_references == 16

    def test_arrays_coerced_to_float64(self):
        r = TrackingReading(
            reference_rssi=[[-60, -70], [-65, -75]],
            tracking_rssi=[-62, -72],
            reference_positions=[[0, 0], [1, 0]],
        )
        assert r.reference_rssi.dtype == np.float64
        assert r.tracking_rssi.dtype == np.float64

    def test_rejects_reader_count_mismatch(self):
        with pytest.raises(ReadingError, match="reader count mismatch"):
            TrackingReading(
                reference_rssi=np.zeros((3, 4)),
                tracking_rssi=np.zeros(4),
                reference_positions=np.zeros((4, 2)),
            )

    def test_rejects_reference_count_mismatch(self):
        with pytest.raises(ReadingError, match="reference tag count"):
            TrackingReading(
                reference_rssi=np.zeros((4, 5)),
                tracking_rssi=np.zeros(4),
                reference_positions=np.zeros((4, 2)),
            )

    def test_rejects_nan_rssi(self):
        ref = np.zeros((2, 3))
        ref[0, 1] = np.nan
        with pytest.raises(ReadingError, match="non-finite"):
            TrackingReading(
                reference_rssi=ref,
                tracking_rssi=np.zeros(2),
                reference_positions=np.zeros((3, 2)),
            )

    def test_rejects_inf_tracking(self):
        with pytest.raises(ReadingError, match="non-finite"):
            TrackingReading(
                reference_rssi=np.zeros((2, 3)),
                tracking_rssi=np.array([0.0, np.inf]),
                reference_positions=np.zeros((3, 2)),
            )

    def test_rejects_1d_reference_rssi(self):
        with pytest.raises(ReadingError, match="2-D"):
            TrackingReading(
                reference_rssi=np.zeros(4),
                tracking_rssi=np.zeros(4),
                reference_positions=np.zeros((4, 2)),
            )

    def test_rejects_bad_position_shape(self):
        with pytest.raises(ReadingError, match="n_refs, 2"):
            TrackingReading(
                reference_rssi=np.zeros((2, 3)),
                tracking_rssi=np.zeros(2),
                reference_positions=np.zeros((3, 3)),
            )

    def test_reader_ids_length_checked(self):
        with pytest.raises(ReadingError, match="reader_ids"):
            TrackingReading(
                reference_rssi=np.zeros((2, 3)),
                tracking_rssi=np.zeros(2),
                reference_positions=np.zeros((3, 2)),
                reader_ids=("a",),
            )

    def test_subset_readers_selects_rows(self):
        r = _valid_reading()
        sub = r.subset_readers([0, 2])
        assert sub.n_readers == 2
        np.testing.assert_array_equal(sub.reference_rssi, r.reference_rssi[[0, 2]])
        np.testing.assert_array_equal(sub.tracking_rssi, r.tracking_rssi[[0, 2]])

    def test_subset_readers_keeps_ids(self):
        r = TrackingReading(
            reference_rssi=np.zeros((3, 2)),
            tracking_rssi=np.zeros(3),
            reference_positions=np.zeros((2, 2)),
            reader_ids=("a", "b", "c"),
        )
        assert r.subset_readers([2, 0]).reader_ids == ("c", "a")

    def test_subset_readers_rejects_empty(self):
        with pytest.raises(ReadingError, match="zero readers"):
            _valid_reading().subset_readers([])


class TestEstimationError:
    def test_zero_for_identical_points(self):
        assert estimation_error((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_known_345_triangle(self):
        assert estimation_error((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ReadingError):
            estimation_error((1.0, 2.0, 3.0), (0.0, 0.0))

    @given(
        st.tuples(
            st.floats(-100, 100), st.floats(-100, 100),
            st.floats(-100, 100), st.floats(-100, 100),
        )
    )
    def test_symmetry(self, coords):
        x0, y0, x1, y1 = coords
        a, b = (x0, y0), (x1, y1)
        assert estimation_error(a, b) == pytest.approx(estimation_error(b, a))

    @given(
        st.tuples(
            st.floats(-50, 50), st.floats(-50, 50),
            st.floats(-50, 50), st.floats(-50, 50),
            st.floats(-50, 50), st.floats(-50, 50),
        )
    )
    def test_triangle_inequality(self, coords):
        x0, y0, x1, y1, x2, y2 = coords
        a, b, c = (x0, y0), (x1, y1), (x2, y2)
        assert estimation_error(a, c) <= (
            estimation_error(a, b) + estimation_error(b, c) + 1e-9
        )


class TestEstimateResult:
    def test_error_to_matches_function(self):
        res = EstimateResult(position=(1.0, 1.0), estimator="x")
        assert res.error_to((2.0, 1.0)) == pytest.approx(1.0)

    def test_xy_accessors(self):
        res = EstimateResult(position=(1.5, 2.5))
        assert res.x == 1.5
        assert res.y == 2.5

    def test_landmarc_satisfies_estimator_protocol(self):
        assert isinstance(LandmarcEstimator(), Estimator)


class TestMakeReadingHelper:
    def test_helper_produces_grid_consistent_reading(self):
        r = make_reading(np.zeros((4, 16)), np.zeros(4))
        assert r.n_references == 16
        assert r.reference_positions.shape == (16, 2)
