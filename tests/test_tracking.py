"""Tests for the mobility layer: trajectories, filters, tracker."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LandmarcEstimator,
    VIREConfig,
    VIREEstimator,
    paper_testbed_grid,
)
from repro.exceptions import ConfigurationError
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.tracking import (
    AlphaBetaFilter,
    KalmanFilter2D,
    MovingAverageFilter,
    NoFilter,
    TagTracker,
    Trajectory,
    evaluate_track,
)

from .conftest import make_clean_environment


class TestTrajectory:
    def test_position_interpolated(self):
        traj = Trajectory(times_s=(0.0, 10.0), waypoints=((0.0, 0.0), (10.0, 0.0)))
        assert traj.position_at(5.0) == pytest.approx((5.0, 0.0))

    def test_clamped_outside_time_range(self):
        traj = Trajectory(times_s=(5.0, 10.0), waypoints=((1.0, 1.0), (2.0, 2.0)))
        assert traj.position_at(0.0) == (1.0, 1.0)
        assert traj.position_at(20.0) == (2.0, 2.0)

    def test_length(self):
        traj = Trajectory(
            times_s=(0.0, 1.0, 2.0),
            waypoints=((0.0, 0.0), (3.0, 0.0), (3.0, 4.0)),
        )
        assert traj.length_m == pytest.approx(7.0)

    def test_constant_speed_builder(self):
        traj = Trajectory.constant_speed(
            [(0.0, 0.0), (4.0, 0.0)], speed_mps=2.0, start_time_s=1.0
        )
        assert traj.times_s == (1.0, 3.0)
        assert traj.position_at(2.0) == pytest.approx((2.0, 0.0))

    def test_sample_interval(self):
        traj = Trajectory(times_s=(0.0, 2.0), waypoints=((0.0, 0.0), (2.0, 0.0)))
        samples = traj.sample(1.0)
        assert [t for t, _ in samples] == [0.0, 1.0, 2.0]

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            Trajectory(times_s=(0.0, 0.0), waypoints=((0.0, 0.0), (1.0, 0.0)))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Trajectory(times_s=(0.0,), waypoints=((0.0, 0.0), (1.0, 0.0)))

    def test_evaluate_track_perfect(self):
        traj = Trajectory(times_s=(0.0, 10.0), waypoints=((0.0, 0.0), (10.0, 0.0)))
        fixes = [(t, traj.position_at(t)) for t in (0.0, 2.5, 5.0, 10.0)]
        err = evaluate_track(traj, fixes)
        assert err.rmse_m == pytest.approx(0.0)
        assert err.n_fixes == 4

    def test_evaluate_track_offset(self):
        traj = Trajectory(times_s=(0.0, 1.0), waypoints=((0.0, 0.0), (0.0, 1.0)))
        fixes = [(0.0, (1.0, 0.0)), (1.0, (1.0, 1.0))]
        err = evaluate_track(traj, fixes)
        assert err.mean_m == pytest.approx(1.0)

    def test_evaluate_empty_rejected(self):
        traj = Trajectory(times_s=(0.0, 1.0), waypoints=((0.0, 0.0), (0.0, 1.0)))
        with pytest.raises(ConfigurationError):
            evaluate_track(traj, [])


class TestFilters:
    def test_no_filter_passthrough(self):
        f = NoFilter()
        assert f.update(0.0, None) is None
        assert f.update(1.0, (1.0, 2.0)) == (1.0, 2.0)
        assert f.update(2.0, None) == (1.0, 2.0)  # holds last

    def test_moving_average(self):
        f = MovingAverageFilter(window=2)
        f.update(0.0, (0.0, 0.0))
        out = f.update(1.0, (2.0, 2.0))
        assert out == pytest.approx((1.0, 1.0))

    def test_moving_average_window_drop(self):
        f = MovingAverageFilter(window=2)
        f.update(0.0, (0.0, 0.0))
        f.update(1.0, (2.0, 0.0))
        out = f.update(2.0, (4.0, 0.0))
        assert out == pytest.approx((3.0, 0.0))

    def test_alpha_beta_tracks_constant_velocity(self):
        f = AlphaBetaFilter(alpha=0.6, beta=0.3)
        # Target moves at 1 m/s along x; after convergence the filter
        # should predict well during a dropout.
        for t in range(12):
            f.update(float(t), (float(t), 0.0))
        coasted = f.update(13.0, None)
        assert coasted == pytest.approx((13.0, 0.0), abs=0.5)

    def test_alpha_beta_rejects_backwards_time(self):
        f = AlphaBetaFilter()
        f.update(1.0, (0.0, 0.0))
        with pytest.raises(ConfigurationError):
            f.update(0.5, (0.0, 0.0))

    def test_kalman_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        truth = [(float(t), 0.0) for t in range(60)]
        noisy = [(x + rng.normal(0, 0.5), y + rng.normal(0, 0.5))
                 for x, y in truth]
        # The true motion is exactly constant-velocity, so a small
        # process noise is the matched model and filters hardest.
        f = KalmanFilter2D(measurement_sigma_m=0.5, process_accel=0.05)
        errs_raw, errs_filt = [], []
        for t, (z, true) in enumerate(zip(noisy, truth)):
            out = f.update(float(t), z)
            errs_raw.append(np.hypot(z[0] - true[0], z[1] - true[1]))
            errs_filt.append(np.hypot(out[0] - true[0], out[1] - true[1]))
        # Ignore the convergence transient.
        assert np.mean(errs_filt[10:]) < 0.6 * np.mean(errs_raw[10:])

    def test_kalman_velocity_estimate(self):
        f = KalmanFilter2D(measurement_sigma_m=0.1, process_accel=0.5)
        for t in range(20):
            f.update(float(t), (2.0 * t, 0.0))
        vx, vy = f.velocity
        assert vx == pytest.approx(2.0, abs=0.3)
        assert abs(vy) < 0.2

    def test_kalman_coasts_through_dropout(self):
        f = KalmanFilter2D(measurement_sigma_m=0.1, process_accel=0.3)
        for t in range(15):
            f.update(float(t), (float(t), 0.0))
        coasted = f.update(17.0, None)
        assert coasted == pytest.approx((17.0, 0.0), abs=0.6)

    def test_kalman_none_before_first_measurement(self):
        f = KalmanFilter2D()
        assert f.update(0.0, None) is None
        assert f.velocity is None

    def test_reset(self):
        for f in (NoFilter(), MovingAverageFilter(), AlphaBetaFilter(),
                  KalmanFilter2D()):
            f.update(0.0, (1.0, 1.0))
            f.reset()
            assert f.update(1.0, None) is None

    @given(st.lists(
        st.tuples(st.floats(-5, 5), st.floats(-5, 5)), min_size=1, max_size=30,
    ))
    @settings(max_examples=25, deadline=None)
    def test_filters_always_return_finite(self, measurements):
        for f in (MovingAverageFilter(3), AlphaBetaFilter(), KalmanFilter2D()):
            for t, m in enumerate(measurements):
                out = f.update(float(t), m)
                assert out is not None
                assert np.isfinite(out).all()


class TestTagTracker:
    def _sampler(self):
        return TrialSampler(
            make_clean_environment(),
            paper_testbed_grid(),
            seed=0,
            measurement=MeasurementSpec(n_reads=1),
        )

    def test_tracks_static_tag(self):
        sampler = self._sampler()
        grid = paper_testbed_grid()
        tracker = TagTracker(VIREEstimator(grid, VIREConfig(target_total_tags=900)))
        pos = (1.5, 1.5)
        for t in range(3):
            point = tracker.ingest(float(t), sampler.reading_for(pos))
            assert point.raw is not None
        fixes = tracker.fixes()
        assert len(fixes) == 3
        for _, (x, y) in fixes:
            assert np.hypot(x - 1.5, y - 1.5) < 0.3

    def test_dropout_handling(self):
        tracker = TagTracker(LandmarcEstimator(), MovingAverageFilter(2))
        sampler = self._sampler()
        tracker.ingest(0.0, sampler.reading_for((1.0, 1.0)))
        point = tracker.ingest(1.0, None)
        assert point.dropout
        assert point.filtered is not None  # moving average holds
        assert tracker.dropout_count == 1

    def test_ingest_from_converts_reading_error(self):
        from repro.exceptions import ReadingError

        def failing_snapshot():
            raise ReadingError("no fresh reading")

        tracker = TagTracker(LandmarcEstimator())
        point = tracker.ingest_from(0.0, failing_snapshot)
        assert point.dropout

    def test_fixes_raw_vs_filtered(self):
        tracker = TagTracker(LandmarcEstimator(), MovingAverageFilter(4))
        sampler = self._sampler()
        for t, x in enumerate((0.5, 1.0, 1.5)):
            tracker.ingest(float(t), sampler.reading_for((x, 1.0)))
        raw = tracker.fixes(filtered=False)
        filt = tracker.fixes(filtered=True)
        assert len(raw) == len(filt) == 3
        assert raw[-1] != filt[-1]  # smoothing changed the last fix

    def test_reset(self):
        tracker = TagTracker(LandmarcEstimator(), KalmanFilter2D())
        sampler = self._sampler()
        tracker.ingest(0.0, sampler.reading_for((1.0, 1.0)))
        tracker.reset()
        assert tracker.history == []
        assert tracker.dropout_count == 0
