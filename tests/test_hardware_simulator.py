"""Tests for the testbed simulator and deployment builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_paper_deployment, figure2a_tracking_tags
from repro.exceptions import ConfigurationError, SimulationError
from repro.hardware.readers import Reader
from repro.hardware.simulator import TestbedSimulator as Simulator
from repro.hardware.tags import ActiveTag, TagSpec
from repro.rf.disturbance import HumanMovementDisturbance
from repro.rf.interference import TagInterferenceModel

from .conftest import make_clean_environment


@pytest.fixture
def clean_env():
    return make_clean_environment()


def build(env, seed=0, tracking=None, **kwargs):
    tracking = tracking if tracking is not None else {"track-1": (1.3, 1.7)}
    return build_paper_deployment(env, tracking_tags=tracking, seed=seed, **kwargs)


class TestDeployment:
    def test_builds_expected_population(self, clean_env):
        dep = build(clean_env)
        sim = dep.simulator
        assert len(sim.tags) == 17  # 16 reference + 1 tracking
        assert len(sim.readers) == 4
        assert sum(t.is_reference for t in sim.tags) == 16

    def test_reader_positions_match_channel(self, clean_env):
        dep = build(clean_env)
        np.testing.assert_allclose(
            np.array([r.position for r in dep.simulator.readers]),
            dep.simulator.channel.reader_positions,
        )

    def test_tracking_truth_registered(self, clean_env):
        dep = build(clean_env)
        assert dep.tracking_truth == {"track-1": (1.3, 1.7)}

    def test_move_tracking_tag_updates_truth(self, clean_env):
        dep = build(clean_env)
        dep.move_tracking_tag("track-1", (2.0, 2.0))
        assert dep.tracking_truth["track-1"] == (2.0, 2.0)
        assert dep.simulator.tag("track-1").position == (2.0, 2.0)

    def test_move_unknown_tag_rejected(self, clean_env):
        dep = build(clean_env)
        with pytest.raises(ConfigurationError):
            dep.move_tracking_tag("ref-0", (2.0, 2.0))

    def test_reader_outside_room_rejected(self):
        import dataclasses

        from repro.geometry.rooms import rectangular_room

        tiny = dataclasses.replace(
            make_clean_environment(),
            room=rectangular_room(2.0, 2.0, name="tiny"),
        )
        with pytest.raises(ConfigurationError, match="outside room"):
            build(tiny)

    def test_offsets_drawn_from_environment(self):
        env = make_clean_environment(
            reference_tag_offset_sigma_db=3.0, tracking_tag_offset_sigma_db=1.0
        )
        dep = build(env, seed=1)
        ref_offsets = [
            t.offset_db for t in dep.simulator.tags if t.is_reference
        ]
        assert np.std(ref_offsets) > 0.5
        trk = dep.simulator.tag("track-1")
        assert trk.offset_db != 0.0

    def test_offsets_deterministic_per_seed(self):
        env = make_clean_environment(reference_tag_offset_sigma_db=3.0)
        o1 = [t.offset_db for t in build(env, seed=5).simulator.tags]
        o2 = [t.offset_db for t in build(env, seed=5).simulator.tags]
        assert o1 == o2


class TestSimulator:
    def test_warm_up_reaches_full_coverage(self, clean_env):
        dep = build(clean_env)
        t = dep.simulator.warm_up()
        cov = dep.simulator.middleware.coverage(t)
        assert all(v == 1.0 for v in cov.values())

    def test_reading_snapshot_available_after_warmup(self, clean_env):
        dep = build(clean_env)
        dep.simulator.warm_up()
        reading = dep.simulator.reading_for("track-1")
        assert reading.n_readers == 4
        assert reading.n_references == 16

    def test_clean_env_reading_matches_path_loss(self, clean_env):
        dep = build(clean_env)
        dep.simulator.warm_up()
        dep.simulator.run_for(10.0)
        reading = dep.simulator.reading_for("track-1")
        pos = np.array([1.3, 1.7])
        for k, reader in enumerate(dep.simulator.readers):
            d = np.linalg.norm(pos - np.asarray(reader.position))
            expected = float(clean_env.path_loss.rssi(d))
            assert reading.tracking_rssi[k] == pytest.approx(expected, abs=0.3)

    def test_deterministic_given_seed(self, clean_env):
        def run(seed):
            dep = build(clean_env, seed=seed)
            dep.simulator.warm_up()
            dep.simulator.run_for(6.0)
            return dep.simulator.reading_for("track-1").tracking_rssi

        np.testing.assert_array_equal(run(3), run(3))

    def test_beacons_arrive_at_interval_rate(self, clean_env):
        dep = build(clean_env)
        dep.simulator.run_for(20.0)
        # 17 tags beaconing every ~2 s for 20 s -> about 170 beacons.
        total = sum(t.beacons_sent for t in dep.simulator.tags)
        assert 120 <= total <= 220

    def test_dead_battery_stops_beaconing(self, clean_env):
        dep = build(
            clean_env,
            tag_spec=TagSpec(beacon_interval_s=2.0, beacon_jitter_s=0.1,
                             battery_life_beacons=3),
        )
        dep.simulator.run_for(30.0)
        for tag in dep.simulator.tags:
            assert tag.beacons_sent == 3

    def test_negative_duration_rejected(self, clean_env):
        dep = build(clean_env)
        with pytest.raises(SimulationError):
            dep.simulator.run_for(-1.0)

    def test_unknown_tag_lookup_rejected(self, clean_env):
        dep = build(clean_env)
        with pytest.raises(ConfigurationError):
            dep.simulator.tag("nope")

    def test_tag_offset_shifts_reading(self):
        env = make_clean_environment()
        dep = build(env, seed=0)
        dep.simulator.tag("track-1").offset_db = 10.0
        dep.simulator.warm_up()
        dep.simulator.run_for(10.0)
        boosted = dep.simulator.reading_for("track-1").tracking_rssi

        dep2 = build(env, seed=0)
        dep2.simulator.warm_up()
        dep2.simulator.run_for(10.0)
        plain = dep2.simulator.reading_for("track-1").tracking_rssi
        np.testing.assert_allclose(boosted - plain, 10.0, atol=0.5)

    def test_duplicate_tag_ids_rejected(self, clean_env, readers):
        channel = clean_env.build_channel(readers, seed=0)
        tags = [
            ActiveTag("dup", (0.0, 0.0), is_reference=True),
            ActiveTag("dup", (1.0, 0.0), is_reference=True),
        ]
        rs = [Reader(f"r{k}", tuple(p)) for k, p in enumerate(readers)]
        with pytest.raises(ConfigurationError, match="unique"):
            Simulator(channel, tags, rs)

    def test_reader_channel_mismatch_rejected(self, clean_env, readers):
        channel = clean_env.build_channel(readers, seed=0)
        tags = [ActiveTag("ref", (0.0, 0.0), is_reference=True)]
        rs = [Reader(f"r{k}", (0.0, 0.0)) for k in range(4)]
        with pytest.raises(ConfigurationError, match="mismatches"):
            Simulator(channel, tags, rs)

    def test_needs_reference_tags(self, clean_env, readers):
        channel = clean_env.build_channel(readers, seed=0)
        tags = [ActiveTag("track", (0.0, 0.0))]
        rs = [Reader(f"r{k}", tuple(p)) for k, p in enumerate(readers)]
        with pytest.raises(ConfigurationError, match="no reference tags"):
            Simulator(channel, tags, rs)


class TestDisturbanceIntegration:
    def test_walker_dips_readings(self):
        from repro.hardware.middleware import SmoothingSpec

        env = make_clean_environment()
        # The walker inches along x=0.15, sitting on the line between the
        # tracking tag at (1.3, 1.7) and the SW reader at (-1, -1) for the
        # whole window; "latest" smoothing exposes the dip directly.
        walk = HumanMovementDisturbance(
            waypoints=((0.15, -0.5), (0.15, 1.0)),
            speed_mps=0.1,
            body_radius_m=0.8,
            attenuation_db=15.0,
            start_time_s=0.0,
        )
        common = dict(
            tracking_tags={"track-1": (1.3, 1.7)},
            seed=0,
            smoothing=SmoothingSpec(mode="latest"),
        )
        dep = build_paper_deployment(env, disturbances=[walk], **common)
        dep.simulator.run_for(8.0)
        disturbed = dep.simulator.reading_for("track-1").tracking_rssi.copy()

        dep_free = build_paper_deployment(env, **common)
        dep_free.simulator.run_for(8.0)
        free = dep_free.simulator.reading_for("track-1").tracking_rssi
        # Reader 0 (SW) is obstructed; the others see the same RSSI.
        assert disturbed[0] < free[0] - 3.0
        np.testing.assert_allclose(disturbed[1:], free[1:], atol=1e-9)


class TestInterferenceIntegration:
    def test_dense_deployment_corrupts_offsets(self, readers):
        env = make_clean_environment()
        channel = env.build_channel(readers, seed=0)
        rng_pts = np.random.default_rng(0)
        tags = [
            ActiveTag(f"ref-{i}", tuple(rng_pts.uniform(1.45, 1.55, 2)),
                      is_reference=True)
            for i in range(15)
        ]
        rs = [Reader(f"reader-{k}", tuple(p)) for k, p in enumerate(readers)]
        sim = Simulator(
            channel, tags, rs, seed=0, interference=TagInterferenceModel()
        )
        offsets = list(sim._interference_offsets.values())
        assert np.ptp(offsets) > 1.0
