"""Tests for per-reader health tracking and the circuit breaker.

The breaker's clock is whatever the caller passes in (the simulation
clock in production), so every transition here is exact — no sleeps, no
flakiness.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.service import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ReaderHealthTracker,
)
from repro.service.metrics import MetricsRegistry


def make_breaker(threshold: int = 3, timeout: float = 10.0) -> CircuitBreaker:
    return CircuitBreaker(
        BreakerPolicy(failure_threshold=threshold, recovery_timeout_s=timeout)
    )


class TestBreakerPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(recovery_timeout_s=0.0)


class TestCircuitBreaker:
    def test_opens_at_threshold_not_before(self):
        breaker = make_breaker(threshold=3)
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.record_failure(3.0)  # third consecutive: opens
        assert breaker.state == BreakerState.OPEN
        assert breaker.transitions == 1

    def test_success_resets_the_failure_streak(self):
        breaker = make_breaker(threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success()
        breaker.record_failure(2.0)
        assert breaker.state == BreakerState.CLOSED  # streak restarted

    def test_open_blocks_until_recovery_timeout(self):
        breaker = make_breaker(threshold=1, timeout=10.0)
        breaker.record_failure(5.0)
        assert not breaker.allows(5.1)
        assert not breaker.allows(14.999)
        assert breaker.allows(15.0)  # timeout elapsed: half-open probe
        assert breaker.state == BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = make_breaker(threshold=1, timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allows(2.0)
        assert breaker.record_success()  # close transition reported
        assert breaker.state == BreakerState.CLOSED
        assert breaker.transitions == 3  # open, half-open, close

    def test_half_open_probe_failure_reopens_and_restarts_timeout(self):
        breaker = make_breaker(threshold=1, timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allows(10.0)  # half-open at exactly the timeout
        assert breaker.record_failure(10.0)  # failed probe
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allows(19.0)  # timeout restarted from 10.0
        assert breaker.allows(20.0)

    def test_closed_always_allows(self):
        breaker = make_breaker()
        assert breaker.allows(0.0) and breaker.allows(1e9)


class TestReaderHealthTracker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReaderHealthTracker([])
        with pytest.raises(ConfigurationError):
            ReaderHealthTracker(["r0"], freshness_floor=0.0)

    def test_healthy_observations_keep_everything_closed(self):
        tracker = ReaderHealthTracker(["r0", "r1"])
        for t in range(10):
            tracker.observe({"r0": 1.0, "r1": 0.9}, float(t))
        assert tracker.state() == {"r0": "closed", "r1": "closed"}
        assert tracker.allowed_readers(10.0) == ["r0", "r1"]
        assert tracker.open_readers() == []
        assert tracker.transitions_total() == 0

    def test_stale_reader_opens_after_threshold(self):
        tracker = ReaderHealthTracker(
            ["r0", "r1"],
            policy=BreakerPolicy(failure_threshold=3, recovery_timeout_s=5.0),
        )
        for t in range(3):
            tracker.observe({"r0": 0.1, "r1": 1.0}, float(t))
        assert tracker.state()["r0"] == "open"
        assert tracker.open_readers() == ["r0"]
        assert tracker.allowed_readers(2.5) == ["r1"]

    def test_missing_reader_counts_as_fully_stale(self):
        tracker = ReaderHealthTracker(
            ["r0"], policy=BreakerPolicy(failure_threshold=1,
                                         recovery_timeout_s=5.0)
        )
        tracker.observe({}, 0.0)  # r0 absent from the freshness map
        assert tracker.state()["r0"] == "open"

    def test_recovery_cycle_open_probe_close(self):
        policy = BreakerPolicy(failure_threshold=1, recovery_timeout_s=4.0)
        tracker = ReaderHealthTracker(["r0"], policy=policy)
        tracker.observe({"r0": 0.0}, 0.0)  # opens
        assert tracker.allowed_readers(1.0) == []
        assert tracker.allowed_readers(4.0) == ["r0"]  # half-open probe
        tracker.observe({"r0": 1.0}, 4.0)  # probe succeeds
        assert tracker.state()["r0"] == "closed"
        # open + half_open + close
        assert tracker.transitions_total() == 3

    def test_freshness_floor_is_the_cutoff(self):
        tracker = ReaderHealthTracker(
            ["r0"],
            policy=BreakerPolicy(failure_threshold=1, recovery_timeout_s=1.0),
            freshness_floor=0.75,
        )
        tracker.observe({"r0": 0.75}, 0.0)  # at the floor: healthy
        assert tracker.state()["r0"] == "closed"
        tracker.observe({"r0": 0.74}, 1.0)  # just below: failure
        assert tracker.state()["r0"] == "open"

    def test_metrics_counter_tracks_transitions(self):
        metrics = MetricsRegistry()
        tracker = ReaderHealthTracker(
            ["r0"],
            policy=BreakerPolicy(failure_threshold=1, recovery_timeout_s=2.0),
            metrics=metrics,
        )
        tracker.observe({"r0": 0.0}, 0.0)  # open
        tracker.allowed_readers(2.0)  # half-open
        tracker.observe({"r0": 1.0}, 2.0)  # close
        rendered = metrics.render_prometheus()
        assert "service_breaker_transitions_total 3" in rendered
