"""Precision tests for edge paths found during the final review pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ReferenceGrid, VirtualGrid, paper_testbed_grid
from repro.core.interpolation import BilinearInterpolator

from .conftest import make_clean_environment


class TestVirtualGridExtension:
    def test_real_tag_mask_excludes_extension_ring(self, grid):
        vg = VirtualGrid(grid, subdivisions=2, extension_cells=1)
        mask = vg.real_tag_mask()
        # Only the 16 real tags are marked even though the lattice extends
        # beyond the grid.
        assert mask.sum() == grid.n_tags
        # And none of them sit in the extension ring.
        ext = vg.extension_cells * vg.subdivisions
        assert not mask[:ext, :].any()
        assert not mask[-ext:, :].any()
        assert not mask[:, :ext].any()
        assert not mask[:, -ext:].any()

    def test_total_tags_includes_extension(self, grid):
        plain = VirtualGrid(grid, subdivisions=3)
        extended = VirtualGrid(grid, subdivisions=3, extension_cells=1)
        assert extended.total_tags > plain.total_tags
        assert extended.shape == (plain.shape[0] + 6, plain.shape[1] + 6)

    def test_extension_positions_outside_bounds(self, grid):
        vg = VirtualGrid(grid, subdivisions=2, extension_cells=1)
        pos = vg.positions()
        assert pos[:, 0].min() == pytest.approx(-1.0)
        assert pos[:, 1].max() == pytest.approx(4.0)


class TestChannelVectorAttenuation:
    def test_per_position_extra_attenuation(self, readers):
        env = make_clean_environment()
        channel = env.build_channel(readers, seed=0)
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        base = channel.sample_rssi(0, pts, rng1, n_reads=1)
        dimmed = channel.sample_rssi(
            0, pts, rng2, n_reads=1, extra_attenuation_db=np.array([3.0, 7.0])
        )
        np.testing.assert_allclose(base[0] - dimmed[0], 3.0, atol=1e-9)
        np.testing.assert_allclose(base[1] - dimmed[1], 7.0, atol=1e-9)


class TestNonSquareGridEndToEnd:
    def test_rectangular_grid_vire_works(self):
        """§6: 'The requirement of having a square real grid is not
        necessary' — a 3x5 rectangular grid localizes fine."""
        from repro import VIREConfig, VIREEstimator
        from repro.experiments.measurement import MeasurementSpec, TrialSampler

        grid = ReferenceGrid(rows=3, cols=5, spacing_x=1.0, spacing_y=1.0)
        env = make_clean_environment()
        sampler = TrialSampler(
            env, grid, seed=0, measurement=MeasurementSpec(n_reads=2)
        )
        vire = VIREEstimator(grid, VIREConfig(subdivisions=8))
        for pos in [(1.3, 0.8), (3.2, 1.4), (0.6, 1.7)]:
            reading = sampler.reading_for(pos)
            assert vire.estimate(reading).error_to(pos) < 0.25, pos

    def test_anisotropic_spacing_vire_works(self):
        from repro import VIREConfig, VIREEstimator
        from repro.experiments.measurement import MeasurementSpec, TrialSampler

        grid = ReferenceGrid(rows=4, cols=4, spacing_x=0.5, spacing_y=1.5)
        env = make_clean_environment()
        sampler = TrialSampler(
            env, grid, seed=0, measurement=MeasurementSpec(n_reads=2)
        )
        vire = VIREEstimator(grid, VIREConfig(subdivisions=8))
        pos = (0.7, 2.2)
        assert vire.estimate(sampler.reading_for(pos)).error_to(pos) < 0.35


class TestInterpolatorAnisotropic:
    def test_bilinear_exact_on_anisotropic_plane(self):
        grid = ReferenceGrid(rows=3, cols=4, spacing_x=0.5, spacing_y=2.0,
                             origin=(1.0, -1.0))
        vg = VirtualGrid(grid, subdivisions=4)
        pos = grid.tag_positions()
        plane = (3.0 * pos[:, 0] - 0.7 * pos[:, 1] + 5.0).reshape(3, 4)
        out = BilinearInterpolator().interpolate(plane, vg)
        vpos = vg.positions()
        expected = (3.0 * vpos[:, 0] - 0.7 * vpos[:, 1] + 5.0).reshape(vg.shape)
        np.testing.assert_allclose(out, expected, atol=1e-9)
