"""Tests for the composed RFChannel and the environment presets."""

from __future__ import annotations

import numpy as np
import pytest
from dataclasses import replace

from repro import corner_reader_positions, paper_testbed_grid
from repro.exceptions import ChannelError, ConfigurationError
from repro.rf import (
    EnvironmentSpec,
    MultipathSpec,
    RFChannel,
    ShadowingSpec,
    env1,
    env2,
    env3,
    environment_by_name,
)
from repro.rf.fading import NoFading

from .conftest import make_clean_environment


@pytest.fixture
def channel(grid, readers):
    return make_clean_environment().build_channel(readers, seed=0)


class TestRFChannel:
    def test_reader_count(self, channel):
        assert channel.n_readers == 4

    def test_mean_rssi_deterministic(self, grid, readers):
        env = env3()
        c1 = env.build_channel(readers, seed=11)
        c2 = env.build_channel(readers, seed=11)
        pts = grid.tag_positions()
        np.testing.assert_array_equal(
            c1.mean_rssi_matrix(pts), c2.mean_rssi_matrix(pts)
        )

    def test_different_seeds_different_worlds(self, grid, readers):
        env = env3()
        pts = grid.tag_positions()
        m1 = env.build_channel(readers, seed=1).mean_rssi_matrix(pts)
        m2 = env.build_channel(readers, seed=2).mean_rssi_matrix(pts)
        assert not np.allclose(m1, m2)

    def test_clean_channel_is_pure_path_loss(self, channel, readers):
        pts = np.array([[1.0, 1.0], [2.0, 2.5]])
        for k in range(4):
            d = np.linalg.norm(pts - readers[k], axis=1)
            expected = channel.path_loss.rssi(d)
            np.testing.assert_allclose(channel.mean_rssi(k, pts), expected)

    def test_mean_rssi_single_matches_batch(self, channel):
        batch = channel.mean_rssi(0, np.array([[1.5, 2.0]]))[0]
        single = channel.mean_rssi_single(0, (1.5, 2.0))
        assert single == pytest.approx(batch)

    def test_sample_shape(self, channel):
        rng = np.random.default_rng(0)
        out = channel.sample_rssi(0, np.zeros((5, 2)), rng, n_reads=3)
        assert out.shape == (5, 3)

    def test_clean_samples_equal_mean(self, channel):
        rng = np.random.default_rng(0)
        pts = np.array([[1.0, 2.0]])
        mean = channel.mean_rssi(0, pts)[:, None]
        # rician_k=1000 ~ no fading, noise 0 -> samples ~ mean (tiny fading).
        samples = channel.sample_rssi(0, pts, rng, n_reads=4)
        np.testing.assert_allclose(samples, np.broadcast_to(mean, samples.shape),
                                   atol=0.3)

    def test_extra_attenuation_subtracts(self, channel):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        pts = np.array([[1.0, 1.0]])
        base = channel.sample_rssi(0, pts, rng1)
        dimmed = channel.sample_rssi(0, pts, rng2, extra_attenuation_db=6.0)
        np.testing.assert_allclose(base - dimmed, 6.0, atol=1e-9)

    def test_sensitivity_floor_applied(self, grid, readers):
        env = make_clean_environment()
        ch = RFChannel(
            env.room, readers, path_loss=env.path_loss,
            shadowing=env.shadowing, multipath=env.multipath,
            fading=NoFading(), noise_sigma_db=0.0,
            sensitivity_dbm=-60.0, seed=0,
        )
        rng = np.random.default_rng(0)
        far = np.array([[11.0, 11.0]])  # weak signal
        out = ch.sample_rssi(0, far, rng)
        assert out.min() >= -60.0

    def test_matrix_shapes(self, channel, grid):
        rng = np.random.default_rng(0)
        pts = grid.tag_positions()
        assert channel.mean_rssi_matrix(pts).shape == (4, 16)
        assert channel.sample_rssi_matrix(pts, rng, n_reads=2).shape == (4, 16)

    def test_reader_index_validated(self, channel):
        with pytest.raises(ChannelError):
            channel.mean_rssi(4, np.zeros((1, 2)))

    def test_n_reads_validated(self, channel):
        with pytest.raises(ChannelError):
            channel.sample_rssi(0, np.zeros((1, 2)), np.random.default_rng(0), n_reads=0)

    def test_needs_a_reader(self):
        env = make_clean_environment()
        with pytest.raises(ChannelError, match="at least one reader"):
            RFChannel(env.room, np.zeros((0, 2)))

    def test_with_fading_keeps_world(self, grid, readers):
        env = env3()
        base = env.build_channel(readers, seed=9)
        swapped = base.with_fading(NoFading())
        pts = grid.tag_positions()
        np.testing.assert_array_equal(
            base.mean_rssi_matrix(pts), swapped.mean_rssi_matrix(pts)
        )

    def test_common_shadowing_preserves_total_variance(self, readers):
        # Ensemble std across frozen worlds at a fixed point must stay
        # ~sigma_db regardless of how variance is split common/individual.
        def ensemble_std(common_fraction: float) -> float:
            env = make_clean_environment(
                shadowing=ShadowingSpec(
                    sigma_db=4.0,
                    correlation_length_m=2.0,
                    common_fraction=common_fraction,
                )
            )
            pt = np.array([[1.3, 1.7]])
            values = []
            for seed in range(60):
                ch = env.build_channel(readers, seed=seed)
                d = np.linalg.norm(pt[0] - readers[0])
                values.append(
                    float(ch.mean_rssi(0, pt)[0] - ch.path_loss.rssi(d))
                )
            return float(np.std(values))

        split = ensemble_std(0.8)
        pure = ensemble_std(0.0)
        assert split == pytest.approx(pure, rel=0.5)
        assert 2.0 < split < 7.0

    def test_common_shadowing_correlates_readers(self, readers):
        # With common_fraction=1 every reader sees the same shadowing value.
        env = make_clean_environment(
            shadowing=ShadowingSpec(
                sigma_db=4.0, correlation_length_m=2.0, common_fraction=1.0
            )
        )
        ch = env.build_channel(readers, seed=3)
        pt = np.array([[1.3, 1.7]])
        offsets = []
        for k in range(4):
            d = np.linalg.norm(pt[0] - readers[k])
            offsets.append(float(ch.mean_rssi(k, pt)[0] - ch.path_loss.rssi(d)))
        assert np.ptp(offsets) < 1e-9


class TestEnvironments:
    @pytest.mark.parametrize("factory", [env1, env2, env3])
    def test_presets_build(self, factory, readers, grid):
        env = factory()
        ch = env.build_channel(readers, seed=0)
        m = ch.mean_rssi_matrix(grid.tag_positions())
        assert np.all(np.isfinite(m))
        assert np.all(m < -20)  # plausible dBm

    def test_rooms_contain_testbed(self, readers):
        for factory in (env1, env2, env3):
            room = factory().room
            for pos in readers:
                assert room.contains(pos, pad=1e-9), (factory.__name__, pos)

    def test_lookup_by_name_case_insensitive(self):
        assert environment_by_name("ENV2").name == "Env2"

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown environment"):
            environment_by_name("Env9")

    def test_env3_harsher_than_env1(self):
        e1, e3 = env1(), env3()
        assert e3.reference_tag_offset_sigma_db > e1.reference_tag_offset_sigma_db
        assert e3.rician_k < e1.rician_k
        assert e3.path_loss.gamma > e1.path_loss.gamma

    def test_without_multipath_variant(self):
        env = env3().without_multipath()
        assert not env.multipath.enabled
        assert env.name.endswith("-nomp")

    def test_negative_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(env1(), reference_tag_offset_sigma_db=-1.0)

    def test_env3_has_furniture(self):
        names = [w.name for w in env3().room.walls]
        assert "cabinet" in names
