"""Tests for the motion-gated VIRE estimator."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import VIREConfig, VIREEstimator, paper_testbed_grid
from repro.exceptions import ConfigurationError
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.tracking.gated import GatedVIREEstimator

from .conftest import make_clean_environment


def reading_at(position, *, timestamp=None, seed=0):
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=1),
    )
    reading = sampler.reading_for(position)
    if timestamp is None:
        return reading
    return dataclasses.replace(reading, timestamp=timestamp)


class TestGatedVIRE:
    def test_matches_plain_vire_without_timestamps(self, grid):
        gated = GatedVIREEstimator(grid, VIREConfig(target_total_tags=900))
        plain = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        reading = reading_at((1.5, 1.5))
        g = gated.estimate(reading)
        p = plain.estimate(reading)
        assert g.position == pytest.approx(p.position, abs=1e-9)
        assert g.diagnostics["gated"] is False

    def test_gate_engages_on_second_fix(self, grid):
        gated = GatedVIREEstimator(grid, VIREConfig(target_total_tags=900))
        gated.estimate(reading_at((1.5, 1.5), timestamp=0.0))
        second = gated.estimate(reading_at((1.6, 1.5), timestamp=2.0))
        assert second.diagnostics["gated"] is True

    def test_gate_restricts_selection(self, grid):
        config = VIREConfig(target_total_tags=900, threshold_margin_db=3.0)
        gated = GatedVIREEstimator(grid, config, v_max_mps=0.2, slack_m=0.2)
        plain = VIREEstimator(grid, config)
        gated.estimate(reading_at((1.5, 1.5), timestamp=0.0))
        reading = reading_at((1.5, 1.5), timestamp=1.0, seed=1)
        g = gated.estimate(reading)
        p = plain.estimate(reading)
        assert g.diagnostics["n_selected"] <= p.diagnostics["n_selected"]

    def test_gate_conflict_falls_back_to_radio(self, grid):
        gated = GatedVIREEstimator(
            grid, VIREConfig(target_total_tags=900),
            v_max_mps=0.01, slack_m=0.01,  # absurdly tight gate
        )
        gated.estimate(reading_at((0.5, 0.5), timestamp=0.0))
        # Tag "teleports" across the grid; the tight gate cannot contain it.
        far = gated.estimate(reading_at((2.5, 2.5), timestamp=1.0))
        assert gated.gate_fallbacks >= 1
        # The radio evidence wins: the fix lands near the true position.
        assert far.error_to((2.5, 2.5)) < 0.5

    def test_backwards_time_rejected(self, grid):
        gated = GatedVIREEstimator(grid, VIREConfig(target_total_tags=900))
        gated.estimate(reading_at((1.5, 1.5), timestamp=5.0))
        with pytest.raises(ConfigurationError, match="backwards"):
            gated.estimate(reading_at((1.5, 1.5), timestamp=4.0))

    def test_reset_clears_state(self, grid):
        gated = GatedVIREEstimator(grid, VIREConfig(target_total_tags=900))
        gated.estimate(reading_at((1.5, 1.5), timestamp=0.0))
        gated.reset()
        res = gated.estimate(reading_at((2.5, 2.5), timestamp=0.0))
        assert res.diagnostics["gated"] is False
        assert gated.gate_fallbacks == 0

    def test_invalid_parameters(self, grid):
        with pytest.raises(Exception):
            GatedVIREEstimator(grid, v_max_mps=0.0)
        with pytest.raises(ConfigurationError):
            GatedVIREEstimator(grid, slack_m=-1.0)

    @pytest.mark.slow
    def test_gating_does_not_hurt_noisy_tracking(self, grid):
        """With a gate sized generously for the motion (v_max and slack
        above the true values), gated VIRE tracks a slow trajectory at
        parity with plain VIRE. The gate's job is robustness (no
        teleporting fixes), not mean accuracy — a too-tight gate locks in
        autocorrelated errors, which is why the defaults are generous."""
        from repro.rf import env3

        sampler_env = env3()
        route = [(0.8 + 0.2 * i, 1.0 + 0.15 * i) for i in range(8)]
        errs_plain, errs_gated = [], []
        for seed in range(5):
            sampler = TrialSampler(
                sampler_env, grid, seed=seed,
                measurement=MeasurementSpec(n_reads=5),
            )
            plain = VIREEstimator(grid, VIREConfig(target_total_tags=900))
            gated = GatedVIREEstimator(
                grid, VIREConfig(target_total_tags=900),
                v_max_mps=0.6, slack_m=0.8,
            )
            for t, pos in enumerate(route):
                reading = dataclasses.replace(
                    sampler.reading_for(pos), timestamp=float(t)
                )
                errs_plain.append(plain.estimate(reading).error_to(pos))
                errs_gated.append(gated.estimate(reading).error_to(pos))
        assert np.mean(errs_gated) <= np.mean(errs_plain) * 1.05
