"""Tests for repro.runtime.checkpoint: the JSONL write-ahead log."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.runtime import CheckpointWriter, load_checkpoint
from repro.runtime.checkpoint import FORMAT_VERSION, jsonable, validate_header


def _write_minimal(path, n_results=3, t=10.0):
    with CheckpointWriter(path) as w:
        w.write_header(scenario="Env1", seed=0)
        for i in range(n_results):
            w.append_result(i, {"tag_id": f"tag-{i}", "value": float(i)})
        w.write_snapshot(t=t, results_count=n_results, state={"x": 1})
    return path


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.int32(3)) == 3
        assert jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_nested_structures(self):
        doc = {"a": (1, np.float64(2.0)), "b": {"c": np.array([3])}}
        assert jsonable(doc) == {"a": [1, 2.0], "b": {"c": [3]}}

    def test_sets_become_sorted_lists(self):
        assert jsonable({3, 1, 2}) == [1, 2, 3]

    def test_exotic_values_fall_back_to_str(self):
        class Exotic:
            def __repr__(self):
                return "<exotic>"

        assert jsonable(Exotic()) == "<exotic>"

    def test_json_float_roundtrip_is_exact(self):
        value = 0.1 + 0.2  # classic non-representable sum
        assert json.loads(json.dumps(jsonable(value))) == value


class TestWriterAndLoader:
    def test_roundtrip(self, tmp_path):
        path = _write_minimal(tmp_path / "c.ckpt")
        state = load_checkpoint(path)
        assert state.header["scenario"] == "Env1"
        assert state.header["version"] == FORMAT_VERSION
        assert state.t_cut == 10.0
        assert len(state.results) == 3
        assert state.results[1]["tag_id"] == "tag-1"
        assert state.snapshot["state"] == {"x": 1}

    def test_every_line_is_valid_json(self, tmp_path):
        path = _write_minimal(tmp_path / "c.ckpt")
        for line in path.read_text().splitlines():
            json.loads(line)  # must not raise

    def test_truncated_tail_tolerated(self, tmp_path):
        path = _write_minimal(tmp_path / "c.ckpt")
        with open(path, "a") as fh:
            fh.write('{"type": "result", "i": 99, "tag')  # mid-write crash
        state = load_checkpoint(path)
        assert len(state.results) == 3  # the torn line is ignored

    def test_trailing_results_past_snapshot_discarded(self, tmp_path):
        path = _write_minimal(tmp_path / "c.ckpt")
        with CheckpointWriter(path, append=True) as w:
            w.append_result(3, {"tag_id": "tag-3"})  # never committed
        state = load_checkpoint(path)
        assert len(state.results) == 3

    def test_duplicate_result_index_keeps_latest(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path) as w:
            w.write_header()
            w.append_result(0, {"value": "old"})
            w.append_result(0, {"value": "new"})
            w.write_snapshot(t=1.0, results_count=1)
        assert load_checkpoint(path).results[0]["value"] == "new"

    def test_last_snapshot_wins(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path) as w:
            w.write_header()
            w.append_result(0, {"v": 1})
            w.write_snapshot(t=1.0, results_count=1)
            w.append_result(1, {"v": 2})
            w.write_snapshot(t=2.0, results_count=2)
        state = load_checkpoint(path)
        assert state.t_cut == 2.0
        assert len(state.results) == 2

    def test_markers_are_skipped_by_loader(self, tmp_path):
        path = _write_minimal(tmp_path / "c.ckpt")
        with CheckpointWriter(path, append=True) as w:
            w.write_marker("resume", t_cut=10.0)
            w.write_marker("end", t=12.0)
        assert load_checkpoint(path).t_cut == 10.0

    def test_marker_kind_validated(self, tmp_path):
        with CheckpointWriter(tmp_path / "c.ckpt") as w:
            with pytest.raises(CheckpointError):
                w.write_marker("snapshot")

    def test_closed_writer_refuses_writes(self, tmp_path):
        w = CheckpointWriter(tmp_path / "c.ckpt")
        w.close()
        assert w.closed
        with pytest.raises(CheckpointError):
            w.write_header()
        w.close()  # idempotent

    def test_counters(self, tmp_path):
        with CheckpointWriter(tmp_path / "c.ckpt") as w:
            w.write_header()
            w.append_result(0, {})
            w.append_result(1, {})
            w.write_snapshot(t=1.0, results_count=2)
            assert w.results_logged == 2
            assert w.snapshots_written == 1


class TestLoaderErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_no_header(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_text('{"type": "snapshot", "t": 1.0, "results_count": 0}\n')
        with pytest.raises(CheckpointError, match="no header"):
            load_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_text(
            '{"type": "header", "version": 999}\n'
            '{"type": "snapshot", "t": 1.0, "results_count": 0}\n'
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_no_snapshot(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path) as w:
            w.write_header()
            w.append_result(0, {})
        with pytest.raises(CheckpointError, match="no complete snapshot"):
            load_checkpoint(path)

    def test_snapshot_commits_unlogged_results(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path) as w:
            w.write_header()
            w.write_snapshot(t=1.0, results_count=5)
        with pytest.raises(CheckpointError, match="never logged"):
            load_checkpoint(path)


class TestFsync:
    def test_fsync_snapshot_smoke(self, tmp_path):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path, fsync=True) as w:
            w.write_header()
            w.write_snapshot(t=1.0, results_count=0)
        assert load_checkpoint(path).t_cut == 1.0


class TestValidateHeader:
    def _restored(self, tmp_path, **header):
        path = tmp_path / "c.ckpt"
        with CheckpointWriter(path) as w:
            w.write_header(**header)
            w.write_snapshot(t=1.0, results_count=0, state={})
        return load_checkpoint(path)

    def test_matching_identity_passes(self, tmp_path):
        state = self._restored(
            tmp_path, scenario="Env1", seed=3, zone=None
        )
        validate_header(
            state, {"scenario": "Env1", "seed": 3, "zone": None}
        )

    def test_mismatch_names_the_offending_key(self, tmp_path):
        state = self._restored(tmp_path, scenario="Env1", seed=3)
        with pytest.raises(CheckpointError, match="'seed'"):
            validate_header(state, {"scenario": "Env1", "seed": 4})

    def test_zone_identity_is_enforced(self, tmp_path):
        # Zone A's file presented to zone B: the worlds are different
        # seeded deployments, so the resume must refuse loudly.
        state = self._restored(tmp_path, zone="z0", seed=3)
        with pytest.raises(
            CheckpointError, match="mismatch on 'zone'"
        ) as err:
            validate_header(state, {"zone": "z1", "seed": 3})
        assert "'z0'" in str(err.value) and "'z1'" in str(err.value)

    def test_unzoned_session_rejects_a_zoned_checkpoint(self, tmp_path):
        state = self._restored(tmp_path, zone="z0")
        with pytest.raises(CheckpointError, match="'zone'"):
            validate_header(state, {"zone": None})

    def test_comparison_normalizes_json_types(self, tmp_path):
        # Tuples round-trip through JSON as lists; the check must treat
        # them as equal rather than refusing its own header.
        state = self._restored(tmp_path, origin=[4.5, 0.0], grid=[4, 4])
        validate_header(state, {"origin": (4.5, 0.0), "grid": (4, 4)})
