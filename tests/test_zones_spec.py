"""Tests for repro.zones.spec: zone geometry, plans, fault slicing, builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import paper_scenario
from repro.faults.models import (
    BurstLossFault,
    ReaderOutageFault,
    TagDeathFault,
)
from repro.faults.plan import FaultPlan, chaos_preset
from repro.zones import (
    ZONE_PITCH_M,
    RoamingTag,
    ZonePlan,
    ZoneSpec,
    monolithic_site_plan,
    scaled_site_plan,
    single_zone_plan,
    slice_fault_plan,
    zone_seed,
)


def _spec(zone_id="z0", origin=(0.0, 0.0), **kw):
    from repro.rf.environments import env1

    return ZoneSpec(zone_id=zone_id, environment=env1(), origin=origin, **kw)


class TestZoneSpec:
    def test_frame_transforms_roundtrip(self):
        spec = _spec(origin=(4.5, 9.0))
        assert spec.to_global((1.0, 2.0)) == (5.5, 11.0)
        assert spec.to_local((5.5, 11.0)) == (1.0, 2.0)
        assert spec.to_local(spec.to_global((0.7, 2.3))) == pytest.approx(
            (0.7, 2.3)
        )

    def test_clamp_local_projects_into_lattice_bounds(self):
        spec = _spec(origin=(4.5, 0.0))
        # Site position left of the zone clamps to the lattice edge.
        assert spec.clamp_local((0.0, 1.5)) == (0.0, 1.5)
        assert spec.clamp_local((20.0, -3.0)) == (3.0, 0.0)
        # Interior positions pass through untouched.
        assert spec.clamp_local((6.0, 1.5)) == (1.5, 1.5)

    def test_reader_positions_translate_with_origin(self):
        spec = _spec(origin=(10.0, 0.0))
        local = spec.local_reader_positions()
        shifted = spec.global_reader_positions()
        assert np.allclose(shifted - local, [10.0, 0.0])

    def test_explicit_reader_override(self):
        spec = _spec(reader_positions=((-1.0, -1.0), (4.0, 4.0)))
        assert spec.local_reader_positions().shape == (2, 2)

    def test_rejects_bad_zone_ids(self):
        for bad in ("", "a b", "a/b", "z*"):
            with pytest.raises(ConfigurationError):
                _spec(zone_id=bad)

    def test_footprint_excludes_readers_extent_includes_them(self):
        spec = _spec(origin=(4.5, 0.0))
        assert spec.footprint == (4.5, 0.0, 7.5, 3.0)
        assert spec.extent == (3.5, -1.0, 8.5, 4.0)


class TestRoamingTag:
    def test_piecewise_linear_interpolation(self):
        tag = RoamingTag("r", ((0.0, (0.0, 0.0)), (10.0, (10.0, 0.0))))
        assert tag.position_at(0.0) == (0.0, 0.0)
        assert tag.position_at(5.0) == (5.0, 0.0)
        assert tag.position_at(10.0) == (10.0, 0.0)
        # Clamped outside the timed range.
        assert tag.position_at(-5.0) == (0.0, 0.0)
        assert tag.position_at(99.0) == (10.0, 0.0)

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ConfigurationError):
            RoamingTag("r", ((0.0, (0.0, 0.0)), (0.0, (1.0, 0.0))))

    def test_rejects_empty_route(self):
        with pytest.raises(ConfigurationError):
            RoamingTag("r", ())


class TestZonePlan:
    def test_rejects_duplicate_ids_and_overlap(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ZonePlan((_spec("a"), _spec("a", origin=(10.0, 0.0))))
        with pytest.raises(ConfigurationError, match="overlap"):
            ZonePlan((_spec("a"), _spec("b", origin=(1.0, 0.0))))

    def test_rejects_roaming_label_collisions(self):
        spec = _spec("a", tracking_tags={"1": (0.5, 0.5)})
        roam = RoamingTag("1", ((0.0, (0.0, 0.0)),))
        with pytest.raises(ConfigurationError, match="collides"):
            ZonePlan((spec,), roaming=(roam,))

    def test_zone_seed_is_stable_and_per_zone(self):
        plan = scaled_site_plan("Env1", 2, seed=7)
        assert plan.zone_seed("z0") == zone_seed(7, "z0")
        assert plan.zone_seed("z0") != plan.zone_seed("z1")
        # Independent of how many zones the plan has.
        assert scaled_site_plan("Env1", 4, seed=7).zone_seed("z1") == \
            plan.zone_seed("z1")

    def test_detect_zone_owns_room_centres(self):
        plan = scaled_site_plan("Env1", 4, seed=0)
        for spec in plan:
            centre = spec.to_global((1.5, 1.5))
            assert plan.detect_zone(centre).zone_id == spec.zone_id

    def test_detect_zone_tie_breaks_lexicographically(self):
        plan = scaled_site_plan("Env1", 2, seed=0)
        # Exact midpoint between the two reader constellations.
        mid = (1.5 + ZONE_PITCH_M / 2.0, 1.5)
        assert plan.detect_zone(mid).zone_id == "z0"


class TestFaultSlicing:
    def test_single_zone_slice_is_the_original_plan(self):
        plan = chaos_preset("severe", seed=3)
        sliced = slice_fault_plan(plan, "z0")
        assert sliced.seed == plan.seed
        assert sliced.faults == plan.faults

    def test_zone_prefixed_targets_route_to_their_zone(self):
        plan = FaultPlan(
            [
                ReaderOutageFault("z1/reader-0", start_s=1.0, duration_s=5.0),
                ReaderOutageFault("reader-2", start_s=1.0, duration_s=5.0),
                TagDeathFault("z0/ref-5", death_time_s=2.0),
            ],
            seed=9,
        )
        z0 = slice_fault_plan(plan, "z0")
        z1 = slice_fault_plan(plan, "z1")
        assert [type(f).__name__ for f in z0] == [
            "ReaderOutageFault", "TagDeathFault"
        ]
        assert z0.faults[0].reader_id == "reader-2"  # unprefixed: verbatim
        assert z0.faults[1].tag_id == "ref-5"  # prefix stripped
        assert [f.reader_id for f in z1] == ["reader-0", "reader-2"]
        assert z0.seed == z1.seed == 9

    def test_targetless_faults_hit_every_zone(self):
        plan = FaultPlan(
            [BurstLossFault(p_enter_bad=0.1, p_exit_bad=0.5, loss_bad=0.9)],
            seed=0,
        )
        assert len(slice_fault_plan(plan, "z0")) == 1
        assert len(slice_fault_plan(plan, "z7")) == 1


class TestBuilders:
    def test_single_zone_plan_keeps_the_scenario_verbatim(self):
        scenario = paper_scenario("Env2", n_trials=1, base_seed=11)
        plan = single_zone_plan(scenario)
        (spec,) = plan.zones
        assert spec.environment is scenario.environment
        assert spec.grid is scenario.grid
        assert spec.seed == scenario.base_seed
        assert spec.origin == (0.0, 0.0)
        assert list(spec.tracking_tags.items()) == list(
            scenario.tracking_tags.items()
        )

    def test_scaled_site_tiles_row_major(self):
        plan = scaled_site_plan("Env1", 4, seed=0)
        origins = [spec.origin for spec in plan]
        p = ZONE_PITCH_M
        assert origins == [(0.0, 0.0), (p, 0.0), (0.0, p), (p, p)]
        assert plan.zone_ids == ("z0", "z1", "z2", "z3")
        # Each zone is its own seeded world.
        assert len({spec.seed for spec in plan}) == 4

    def test_monolith_matches_the_zoned_site(self):
        zoned = scaled_site_plan("Env1", 4, seed=0)
        mono = monolithic_site_plan("Env1", 4, seed=0)
        (spec,) = mono.zones
        # Same readers at the same site positions.
        zoned_readers = np.sort(
            np.vstack([z.global_reader_positions() for z in zoned]), axis=0
        )
        mono_readers = np.sort(spec.global_reader_positions(), axis=0)
        assert np.allclose(zoned_readers, mono_readers)
        # Same tracking-tag count, comparable virtual-tag density.
        assert len(spec.tracking_tags) == sum(
            len(z.tracking_tags) for z in zoned
        )
        assert spec.vire.target_total_tags == (10 * (spec.grid.rows - 1) + 1) ** 2

    def test_monolith_lattice_never_collides_with_a_reader(self):
        # The channel refuses zero-length tag->reader segments, so no
        # merged-lattice point may coincide with any reader. ZONE_PITCH_M
        # is chosen to guarantee this; the builder must preserve it.
        for n in (1, 4):
            (spec,) = monolithic_site_plan("Env1", n, seed=0).zones
            lattice = spec.grid.tag_positions()
            readers = spec.local_reader_positions()
            d = np.linalg.norm(
                lattice[:, None, :] - readers[None, :, :], axis=2
            )
            assert d.min() > 1e-6

    def test_monolith_rejects_non_square_and_env3(self):
        with pytest.raises(ConfigurationError, match="square"):
            monolithic_site_plan("Env1", 3)
        with pytest.raises(ConfigurationError, match="recipe"):
            monolithic_site_plan("Env3", 4)
