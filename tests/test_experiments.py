"""Tests for the experiment harness: measurement, scenarios, metrics, runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LandmarcEstimator,
    NearestReferenceEstimator,
    VIREConfig,
    VIREEstimator,
    paper_scenario,
    paper_testbed_grid,
    run_scenario,
)
from repro.exceptions import ConfigurationError
from repro.experiments.measurement import MeasurementSpec, TrialSampler
from repro.experiments.metrics import (
    error_cdf,
    reduction_percent,
    summarize_errors,
)
from repro.experiments.scenarios import TestbedScenario
from repro.rf import PowerLevelQuantizer, env1

from .conftest import make_clean_environment


class TestMetrics:
    def test_summary_values(self):
        s = summarize_errors([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.maximum == 4.0
        assert s.n == 4

    def test_summary_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_errors([])

    def test_summary_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            summarize_errors([1.0, -0.5])

    def test_reduction_percent(self):
        assert reduction_percent(2.0, 1.0) == pytest.approx(50.0)
        assert reduction_percent(1.0, 1.5) == pytest.approx(-50.0)

    def test_reduction_rejects_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            reduction_percent(0.0, 1.0)

    def test_cdf_monotone(self):
        cdf = error_cdf([0.1, 0.5, 1.0, 2.0])
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_cdf_custom_levels(self):
        cdf = error_cdf([0.5, 1.5], levels=[1.0])
        assert cdf == [(1.0, 0.5)]


class TestMeasurementSpec:
    def test_n_reads_validated(self):
        with pytest.raises(ConfigurationError):
            MeasurementSpec(n_reads=0)


class TestTrialSampler:
    def test_reading_structure(self, grid):
        sampler = TrialSampler(make_clean_environment(), grid, seed=0)
        reading = sampler.reading_for((1.0, 2.0))
        assert reading.n_readers == 4
        assert reading.n_references == 16
        np.testing.assert_allclose(
            reading.reference_positions, grid.tag_positions()
        )

    def test_reference_offsets_applied(self, grid):
        env = make_clean_environment(reference_tag_offset_sigma_db=5.0)
        biased = TrialSampler(env, grid, seed=0,
                              measurement=MeasurementSpec(n_reads=1))
        clean = TrialSampler(make_clean_environment(), grid, seed=0,
                             measurement=MeasurementSpec(n_reads=1))
        diff = (
            biased.reading_for((1.0, 1.0)).reference_rssi
            - clean.reading_for((1.0, 1.0)).reference_rssi
        )
        # Offsets are per tag: constant across readers, varying across tags.
        np.testing.assert_allclose(diff[0], diff[1], atol=0.3)
        assert diff[0].std() > 1.0

    def test_quantizer_applied(self, grid):
        spec = MeasurementSpec(n_reads=1, quantizer=PowerLevelQuantizer())
        sampler = TrialSampler(make_clean_environment(), grid, seed=0,
                               measurement=spec)
        reading = sampler.reading_for((1.0, 1.0))
        q = PowerLevelQuantizer()
        np.testing.assert_allclose(
            reading.reference_rssi, q.roundtrip(reading.reference_rssi)
        )

    def test_same_seed_same_world(self, grid):
        env = env1()
        r1 = TrialSampler(env, grid, seed=3).reading_for((1.0, 1.0))
        r2 = TrialSampler(env, grid, seed=3).reading_for((1.0, 1.0))
        np.testing.assert_array_equal(r1.reference_rssi, r2.reference_rssi)

    def test_distinct_tracking_calls_draw_new_offsets(self, grid):
        env = make_clean_environment(tracking_tag_offset_sigma_db=4.0)
        sampler = TrialSampler(env, grid, seed=0,
                               measurement=MeasurementSpec(n_reads=1))
        r1 = sampler.reading_for((1.0, 1.0))
        r2 = sampler.reading_for((1.0, 1.0))
        assert not np.allclose(r1.tracking_rssi, r2.tracking_rssi)

    def test_rssi_vs_distance_shape(self, grid):
        sampler = TrialSampler(make_clean_environment(), grid, seed=0)
        out = sampler.rssi_vs_distance(np.array([1.0, 2.0, 4.0]), n_reads=7)
        assert out.shape == (3, 7)

    def test_rssi_vs_distance_decreases(self, grid):
        sampler = TrialSampler(make_clean_environment(), grid, seed=0)
        out = sampler.rssi_vs_distance(np.array([1.0, 4.0, 16.0]), n_reads=5)
        means = out.mean(axis=1)
        assert means[0] > means[1] > means[2]

    def test_invalid_distances_rejected(self, grid):
        sampler = TrialSampler(make_clean_environment(), grid, seed=0)
        with pytest.raises(ConfigurationError):
            sampler.rssi_vs_distance(np.array([0.0, 1.0]))

    def test_bad_position_rejected(self, grid):
        sampler = TrialSampler(make_clean_environment(), grid, seed=0)
        with pytest.raises(ConfigurationError):
            sampler.reading_for((1.0, 2.0, 3.0))


class TestScenario:
    def test_paper_scenario_by_name(self):
        s = paper_scenario("Env1", n_trials=3)
        assert s.environment.name == "Env1"
        assert len(s.tracking_tags) == 9

    def test_paper_scenario_by_spec(self):
        s = paper_scenario(env1(), n_trials=2)
        assert s.environment.name == "Env1"

    def test_trial_seed_sequence(self):
        s = paper_scenario("Env1", n_trials=3, base_seed=100)
        assert [s.trial_seed(i) for i in range(3)] == [100, 101, 102]

    def test_trial_seed_out_of_range(self):
        s = paper_scenario("Env1", n_trials=3)
        with pytest.raises(ConfigurationError):
            s.trial_seed(3)

    def test_needs_tracking_tags(self):
        with pytest.raises(ConfigurationError):
            TestbedScenario(environment=env1(), tracking_tags={})

    def test_with_changes(self):
        s = paper_scenario("Env1", n_trials=3)
        s2 = s.with_(n_trials=5)
        assert s2.n_trials == 5
        assert s.n_trials == 3


class TestRunner:
    @pytest.fixture
    def scenario(self):
        return TestbedScenario(
            environment=make_clean_environment(),
            tracking_tags={1: (1.5, 1.5), 2: (0.5, 2.5)},
            n_trials=3,
            measurement=MeasurementSpec(n_reads=2),
        )

    def test_result_structure(self, scenario, grid):
        result = run_scenario(
            scenario,
            [LandmarcEstimator(), VIREEstimator(grid, VIREConfig())],
        )
        assert len(result.estimators) == 2
        lm = result.by_name("LANDMARC")
        assert set(lm.per_tag) == {1, 2}
        assert lm.per_tag[1].shape == (3,)

    def test_unknown_estimator_name(self, scenario, grid):
        result = run_scenario(scenario, [LandmarcEstimator()])
        with pytest.raises(ConfigurationError):
            result.by_name("VIRE")

    def test_duplicate_names_rejected(self, scenario):
        with pytest.raises(ConfigurationError, match="unique"):
            run_scenario(scenario, [LandmarcEstimator(), LandmarcEstimator()])

    def test_needs_estimators(self, scenario):
        with pytest.raises(ConfigurationError):
            run_scenario(scenario, [])

    def test_paired_readings_across_estimators(self, scenario, grid):
        """Estimators see the same readings: the clean-channel nearest
        estimator must land exactly on a reference tag every trial."""
        result = run_scenario(scenario, [NearestReferenceEstimator()])
        errs = result.estimators[0].per_tag[1]
        np.testing.assert_allclose(errs, errs[0], atol=1e-6)

    def test_parallel_matches_serial(self, scenario, grid):
        serial = run_scenario(scenario, [LandmarcEstimator()], n_jobs=1)
        parallel = run_scenario(scenario, [LandmarcEstimator()], n_jobs=2)
        np.testing.assert_array_equal(
            serial.estimators[0].per_tag[1],
            parallel.estimators[0].per_tag[1],
        )

    def test_summary_selected_tags(self, scenario, grid):
        result = run_scenario(scenario, [LandmarcEstimator()])
        full = result.estimators[0].summary()
        only1 = result.estimators[0].summary(tags=[1])
        assert full.n == 6
        assert only1.n == 3

    def test_summary_unknown_tags_rejected(self, scenario):
        result = run_scenario(scenario, [LandmarcEstimator()])
        with pytest.raises(ConfigurationError):
            result.estimators[0].summary(tags=[99])

    def test_tag_means_keys(self, scenario):
        result = run_scenario(scenario, [LandmarcEstimator()])
        means = result.estimators[0].tag_means()
        assert set(means) == {1, 2}
        assert all(v >= 0 for v in means.values())
