"""Extra CLI coverage: heatmap command, figure variants, error paths."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestHeatmapCommand:
    def test_heatmap_runs(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "landmarc",
             "--resolution", "4", "--trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "LANDMARC mean error" in out
        assert "worst:" in out

    def test_heatmap_softvire(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "softvire",
             "--resolution", "3", "--trials", "1"]
        ) == 0
        assert "SoftVIRE" in capsys.readouterr().out

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heatmap", "--estimator", "magic"])


class TestFigureCommands:
    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "theoretical" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig7_small(self, capsys):
        assert main(["figure", "fig7", "--trials", "2"]) == 0
        assert "N²" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig8_small(self, capsys):
        assert main(["figure", "fig8", "--trials", "2"]) == 0
        assert "threshold" in capsys.readouterr().out


class TestChaosCommand:
    ARGS = ["chaos", "--env", "Env1", "--duration", "10",
            "--preset", "light", "--seed", "3"]

    def test_human_readable_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "chaos session" in out
        assert "availability" in out
        assert "fault records" in out
        assert "breaker transitions" in out

    def test_json_output_is_byte_identical_across_runs(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        first = capsys.readouterr().out
        assert main([*self.ARGS, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # the CI smoke-job contract
        doc = json.loads(first)
        assert doc["preset"] == "light" and doc["seed"] == 3
        assert doc["availability"] > 0
        assert doc["fault_records"]["seen"] > 0

    def test_extra_outage_and_strict_mode(self, capsys):
        assert main([
            "chaos", "--env", "Env1", "--duration", "6", "--preset", "none",
            "--outage-reader", "reader-0", "--outage-start", "0",
            "--outage-duration", "4", "--strict", "--json",
        ]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["faults"] == 1
        assert doc["fault_records"]["dropped"] > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--preset", "doom"])
