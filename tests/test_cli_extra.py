"""Extra CLI coverage: heatmap command, figure variants, error paths."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestHeatmapCommand:
    def test_heatmap_runs(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "landmarc",
             "--resolution", "4", "--trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "LANDMARC mean error" in out
        assert "worst:" in out

    def test_heatmap_softvire(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "softvire",
             "--resolution", "3", "--trials", "1"]
        ) == 0
        assert "SoftVIRE" in capsys.readouterr().out

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heatmap", "--estimator", "magic"])


class TestFigureCommands:
    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "theoretical" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig7_small(self, capsys):
        assert main(["figure", "fig7", "--trials", "2"]) == 0
        assert "N²" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig8_small(self, capsys):
        assert main(["figure", "fig8", "--trials", "2"]) == 0
        assert "threshold" in capsys.readouterr().out


class TestChaosCommand:
    ARGS = ["chaos", "--env", "Env1", "--duration", "10",
            "--preset", "light", "--seed", "3"]

    def test_human_readable_summary(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "chaos session" in out
        assert "availability" in out
        assert "fault records" in out
        assert "breaker transitions" in out

    def test_json_output_is_byte_identical_across_runs(self, capsys):
        import json

        assert main([*self.ARGS, "--json"]) == 0
        first = capsys.readouterr().out
        assert main([*self.ARGS, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # the CI smoke-job contract
        doc = json.loads(first)
        assert doc["preset"] == "light" and doc["seed"] == 3
        assert doc["availability"] > 0
        assert doc["fault_records"]["seen"] > 0

    def test_extra_outage_and_strict_mode(self, capsys):
        assert main([
            "chaos", "--env", "Env1", "--duration", "6", "--preset", "none",
            "--outage-reader", "reader-0", "--outage-start", "0",
            "--outage-duration", "4", "--strict", "--json",
        ]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["faults"] == 1
        assert doc["fault_records"]["dropped"] > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--preset", "doom"])


class TestTraceCommand:
    """``repro trace``: record / summary / canon / diff round trip."""

    def _record(self, path, seed=5):
        return main([
            "trace", "record", "--env", "Env1", "--duration", "4",
            "--seed", str(seed), "--query-interval", "1.0",
            "--out", str(path),
        ])

    def test_record_and_summarize(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert self._record(out) == 0
        recorded = capsys.readouterr().out
        assert "root spans" in recorded and str(out) in recorded
        assert main(["trace", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "stages by self time" in text
        assert "ladder breakdown" in text

    def test_canon_is_byte_identical_across_seeded_runs(self, tmp_path,
                                                        capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert self._record(a) == 0
        assert self._record(b) == 0
        capsys.readouterr()
        assert main(["trace", "canon", str(a)]) == 0
        canon_a = capsys.readouterr().out
        assert main(["trace", "canon", str(b)]) == 0
        canon_b = capsys.readouterr().out
        assert canon_a == canon_b  # the CI trace-smoke contract
        assert "wall_s" not in canon_a

    def test_diff_agreeing_traces_exits_0(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert self._record(a) == 0
        assert self._record(b) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "traces agree" in capsys.readouterr().out


def _tiny_trace(path, level=1):
    """A minimal hand-written trace file (header + one root span)."""
    import json

    lines = [
        {"format": "repro-trace", "version": 1, "seed": 0},
        {"name": "service.serve", "t": 1.0, "wall_s": 0.01,
         "attrs": {"level": level, "estimator": "VIRE"}},
    ]
    path.write_text(
        "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    )


class TestCliErrorPaths:
    """Exit-code policy: ReproError -> stderr + 2; diff divergence -> 1;
    argparse usage errors -> SystemExit(2)."""

    def test_trace_summary_missing_file_exits_2(self, capsys):
        assert main(["trace", "summary", "/no/such/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot read trace file" in err

    def test_trace_record_unwritable_out_exits_2(self, tmp_path, capsys):
        out = tmp_path / "missing-dir" / "t.jsonl"
        assert main([
            "trace", "record", "--env", "Env1", "--duration", "2",
            "--out", str(out),
        ]) == 2
        assert "cannot open trace file" in capsys.readouterr().err

    def test_trace_canon_rejects_non_trace_file(self, tmp_path, capsys):
        alien = tmp_path / "alien.jsonl"
        alien.write_text('{"format": "something-else"}\n')
        assert main(["trace", "canon", str(alien)]) == 2
        assert "not a repro-trace file" in capsys.readouterr().err

    def test_trace_diff_divergence_exits_1(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _tiny_trace(a, level=1)
        _tiny_trace(b, level=3)
        assert main(["trace", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "traces diverge" in out
        assert "attrs.level" in out

    def test_trace_diff_wall_view_flags_timing_differences(self, tmp_path,
                                                           capsys):
        import json

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _tiny_trace(a)
        _tiny_trace(b)
        doc = json.loads(b.read_text().splitlines()[1])
        doc["wall_s"] = 9.9
        b.write_text(
            b.read_text().splitlines()[0] + "\n"
            + json.dumps(doc, sort_keys=True) + "\n"
        )
        assert main(["trace", "diff", str(a), str(b)]) == 0  # logical view
        capsys.readouterr()
        assert main(["trace", "diff", "--wall", str(a), str(b)]) == 1
        assert "wall_s" in capsys.readouterr().out

    def test_serve_resume_without_checkpoint_exits_2(self, capsys):
        assert main([
            "serve", "--env", "Env1", "--duration", "2", "--resume",
        ]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_serve_resume_conflicts_with_kill_at(self, tmp_path, capsys):
        assert main([
            "serve", "--env", "Env1", "--duration", "2",
            "--checkpoint", str(tmp_path / "wal.jsonl"),
            "--resume", "--kill-at", "1.0",
        ]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_unknown_chaos_preset_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--preset", "doom"])
        assert exc.value.code == 2

    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["trace"])
        assert exc.value.code == 2
