"""Extra CLI coverage: heatmap command, figure variants, error paths."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestHeatmapCommand:
    def test_heatmap_runs(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "landmarc",
             "--resolution", "4", "--trials", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "LANDMARC mean error" in out
        assert "worst:" in out

    def test_heatmap_softvire(self, capsys):
        assert main(
            ["heatmap", "--env", "Env1", "--estimator", "softvire",
             "--resolution", "3", "--trials", "1"]
        ) == 0
        assert "SoftVIRE" in capsys.readouterr().out

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heatmap", "--estimator", "magic"])


class TestFigureCommands:
    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "theoretical" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig7_small(self, capsys):
        assert main(["figure", "fig7", "--trials", "2"]) == 0
        assert "N²" in capsys.readouterr().out

    @pytest.mark.slow
    def test_fig8_small(self, capsys):
        assert main(["figure", "fig8", "--trials", "2"]) == 0
        assert "threshold" in capsys.readouterr().out
