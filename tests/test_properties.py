"""Cross-module property-based tests (hypothesis).

These complement the per-module property tests by checking invariants
that span the whole pipeline: estimator outputs stay inside sensible
hulls for *arbitrary* readings, the channel responds linearly to
attenuation, elimination behaves monotonically under reader subsets,
and the VIRE weighting keeps the estimate a convex combination.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import (
    LandmarcEstimator,
    TrackingReading,
    VIREConfig,
    VIREEstimator,
    WeightedCentroidEstimator,
    paper_testbed_grid,
)
from repro.core.elimination import eliminate
from repro.core.proximity import build_proximity_maps

GRID = paper_testbed_grid()
REF_POSITIONS = GRID.tag_positions()

rssi_values = st.floats(-100.0, -40.0, allow_nan=False, allow_infinity=False)


def reading_strategy(k: int = 4):
    """Arbitrary (but valid) readings over the paper grid."""
    return st.tuples(
        arrays(np.float64, (k, 16), elements=rssi_values),
        arrays(np.float64, (k,), elements=rssi_values),
    ).map(
        lambda t: TrackingReading(
            reference_rssi=t[0],
            tracking_rssi=t[1],
            reference_positions=REF_POSITIONS,
        )
    )


class TestEstimatorHullInvariants:
    @given(reading_strategy())
    @settings(max_examples=40, deadline=None)
    def test_landmarc_inside_grid_hull(self, reading):
        res = LandmarcEstimator().estimate(reading)
        xmin, ymin, xmax, ymax = GRID.bounds
        assert xmin - 1e-9 <= res.x <= xmax + 1e-9
        assert ymin - 1e-9 <= res.y <= ymax + 1e-9

    @given(reading_strategy())
    @settings(max_examples=25, deadline=None)
    def test_vire_inside_virtual_hull(self, reading):
        vire = VIREEstimator(GRID, VIREConfig(subdivisions=5))
        res = vire.estimate(reading)
        xmin, ymin, xmax, ymax = GRID.bounds
        assert xmin - 1e-9 <= res.x <= xmax + 1e-9
        assert ymin - 1e-9 <= res.y <= ymax + 1e-9

    @given(reading_strategy())
    @settings(max_examples=25, deadline=None)
    def test_soft_centroid_inside_grid_hull(self, reading):
        res = WeightedCentroidEstimator().estimate(reading)
        xmin, ymin, xmax, ymax = GRID.bounds
        assert xmin <= res.x <= xmax
        assert ymin <= res.y <= ymax

    @given(reading_strategy())
    @settings(max_examples=25, deadline=None)
    def test_estimates_always_finite(self, reading):
        for est in (
            LandmarcEstimator(),
            VIREEstimator(GRID, VIREConfig(subdivisions=4)),
        ):
            res = est.estimate(reading)
            assert np.isfinite(res.x) and np.isfinite(res.y)


class TestShiftInvariance:
    @given(reading_strategy(), st.floats(-10.0, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_common_shift_leaves_landmarc_unchanged(self, reading, shift):
        """Adding the same constant to every RSSI (reference AND
        tracking) leaves RSSI-space distances, hence the estimate,
        unchanged."""
        res = LandmarcEstimator().estimate(reading)
        shifted = TrackingReading(
            reference_rssi=reading.reference_rssi + shift,
            tracking_rssi=reading.tracking_rssi + shift,
            reference_positions=REF_POSITIONS,
        )
        res2 = LandmarcEstimator().estimate(shifted)
        assert res.position == pytest.approx(res2.position, abs=1e-9)

    @given(reading_strategy(), st.floats(-10.0, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_common_shift_leaves_vire_unchanged(self, reading, shift):
        vire = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        res = vire.estimate(reading)
        shifted = TrackingReading(
            reference_rssi=reading.reference_rssi + shift,
            tracking_rssi=reading.tracking_rssi + shift,
            reference_positions=REF_POSITIONS,
        )
        res2 = vire.estimate(shifted)
        assert res.position == pytest.approx(res2.position, abs=1e-9)


class TestEliminationMonotonicity:
    @given(
        arrays(np.float64, (4, 6, 6), elements=st.floats(0.0, 12.0)),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_fewer_votes_never_shrinks_selection(self, deviations, votes):
        maps = build_proximity_maps(deviations, 3.0)
        stricter = eliminate(maps, min_votes=min(votes + 1, 4))
        looser = eliminate(maps, min_votes=votes)
        assert np.all(looser[stricter])

    @given(arrays(np.float64, (3, 5, 5), elements=st.floats(0.0, 12.0)))
    @settings(max_examples=40, deadline=None)
    def test_dropping_a_reader_never_shrinks_selection(self, deviations):
        all_maps = build_proximity_maps(deviations, 3.0)
        subset_maps = build_proximity_maps(deviations[:2], 3.0)
        full = eliminate(all_maps)
        subset = eliminate(subset_maps)
        assert np.all(subset[full])


class TestReaderPermutationInvariance:
    @given(reading_strategy())
    @settings(max_examples=20, deadline=None)
    def test_vire_invariant_under_reader_order(self, reading):
        """Shuffling the reader rows must not change the estimate (the
        intersection and the weights are symmetric in readers)."""
        vire = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        res = vire.estimate(reading)
        perm = [2, 0, 3, 1]
        shuffled = TrackingReading(
            reference_rssi=reading.reference_rssi[perm],
            tracking_rssi=reading.tracking_rssi[perm],
            reference_positions=REF_POSITIONS,
        )
        res2 = vire.estimate(shuffled)
        assert res.position == pytest.approx(res2.position, abs=1e-9)

    @given(reading_strategy())
    @settings(max_examples=20, deadline=None)
    def test_landmarc_invariant_under_reader_order(self, reading):
        res = LandmarcEstimator().estimate(reading)
        res2 = LandmarcEstimator().estimate(reading.subset_readers([3, 2, 1, 0]))
        assert res.position == pytest.approx(res2.position, abs=1e-9)
