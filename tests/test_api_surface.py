"""API-surface tests: exception hierarchy, reprs, exports, multi-tag use."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    BoundaryAwareEstimator,
    ChannelError,
    ConfigurationError,
    EstimationError,
    GeometryError,
    LandmarcEstimator,
    NearestReferenceEstimator,
    ReadingError,
    ReproError,
    SimulationError,
    SmoothingSpec,
    VIREConfig,
    VIREEstimator,
    WeightedCentroidEstimator,
    WeightedKnnEstimator,
    build_paper_deployment,
    paper_testbed_grid,
)
from repro.tracking.gated import GatedVIREEstimator

from .conftest import make_clean_environment


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, GeometryError, ChannelError, ReadingError,
        EstimationError, SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            paper_testbed_grid().tag_position(99, 0)
        with pytest.raises(ReproError):
            VIREConfig(subdivisions=0)


class TestReprs:
    """Reprs are part of the debugging UX; they should name the knobs."""

    def test_estimator_reprs_informative(self, grid):
        cases = [
            (LandmarcEstimator(k=4), "k=4"),
            (WeightedKnnEstimator(metric="manhattan"), "manhattan"),
            (NearestReferenceEstimator(), "Nearest"),
            (WeightedCentroidEstimator(tau_db=3.0), "3"),
            (VIREEstimator(grid, VIREConfig(subdivisions=5)), "n=5"),
            (BoundaryAwareEstimator(grid), "extension"),
            (GatedVIREEstimator(grid), "v_max"),
        ]
        for obj, fragment in cases:
            assert fragment in repr(obj), (obj, fragment)

    def test_tag_and_reader_reprs(self):
        from repro import ActiveTag, Reader

        assert "ref" in repr(ActiveTag("a", (0, 0), is_reference=True))
        assert "r0" in repr(Reader("r0", (0, 0)))


class TestPublicExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1


class TestMultiTagDeployment:
    """Several tracking tags sharing one testbed — the multi-asset case."""

    def test_three_assets_tracked_concurrently(self):
        truth = {
            "asset-a": (0.7, 0.9),
            "asset-b": (1.8, 1.4),
            "asset-c": (2.4, 2.3),
        }
        dep = build_paper_deployment(
            make_clean_environment(),
            tracking_tags=truth,
            seed=2,
            smoothing=SmoothingSpec(window=5),
        )
        dep.simulator.warm_up()
        dep.simulator.run_for(20.0)
        vire = VIREEstimator(dep.grid, VIREConfig(target_total_tags=900))
        for tag_id, pos in truth.items():
            reading = dep.simulator.reading_for(tag_id)
            err = vire.estimate(reading).error_to(pos)
            assert err < 0.35, (tag_id, err)

    def test_assets_do_not_perturb_each_other(self):
        """Adding a second tracking tag must not change the first tag's
        frozen-world mean readings (tags are passive w.r.t. the channel
        unless the interference model is enabled)."""
        env = make_clean_environment()
        solo = build_paper_deployment(
            env, tracking_tags={"a": (1.5, 1.5)}, seed=3
        )
        duo = build_paper_deployment(
            env, tracking_tags={"a": (1.5, 1.5), "b": (2.5, 0.5)}, seed=3
        )
        for dep in (solo, duo):
            dep.simulator.warm_up()
            dep.simulator.run_for(30.0)
        r_solo = solo.simulator.reading_for("a")
        r_duo = duo.simulator.reading_for("a")
        # Means agree to within the residual read scatter; exact equality
        # is not expected because the shared RNG consumes different draws.
        np.testing.assert_allclose(
            r_solo.tracking_rssi, r_duo.tracking_rssi, atol=0.5
        )
