"""Tests for the degraded-input core: masked readings, lattice filling,
the quorum policy, and the NaN-aware estimator/baseline paths.

These are the layers the fault-injection work leans on — the contract
throughout is "bit-identical on healthy data, graceful on holes":

* :func:`fill_masked_lattice` returns already-finite lattices unchanged
  (same object) and fills NaN holes deterministically, exactly at the
  surviving cells;
* :class:`QuorumPolicy` passes complete readings through untouched and
  trims masked ones to the coverage-qualified reader subset (or raises);
* :class:`VIREEstimator` produces a bitwise-identical estimate when a
  complete reading is merely *flagged* masked, and a sane one when
  reference cells are genuinely missing;
* LANDMARC's RSSI-space distance rescales for per-reference coverage.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import (
    QuorumPolicy,
    TrackingReading,
    VIREConfig,
    VIREEstimator,
    paper_testbed_grid,
)
from repro.core import fill_masked_lattice
from repro.baselines.landmarc import LandmarcEstimator, rssi_space_distances
from repro.exceptions import ConfigurationError, EstimationError
from repro.experiments.measurement import MeasurementSpec, TrialSampler

from .conftest import make_clean_environment


def clean_reading_at(position, seed=0) -> TrackingReading:
    sampler = TrialSampler(
        make_clean_environment(),
        paper_testbed_grid(),
        seed=seed,
        measurement=MeasurementSpec(n_reads=1),
    )
    return sampler.reading_for(position)


def masked_copy(
    reading: TrackingReading, holes: list[tuple[int, int]] = ()
) -> TrackingReading:
    """Flag a reading masked, optionally knocking out (reader, ref) cells."""
    ref = reading.reference_rssi.copy()
    for i, j in holes:
        ref[i, j] = np.nan
    return dataclasses.replace(reading, reference_rssi=ref, masked=True)


# ---------------------------------------------------------------------------
# fill_masked_lattice
# ---------------------------------------------------------------------------


class TestFillMaskedLattice:
    def test_finite_input_returned_unchanged_same_object(self):
        lattice = np.arange(12.0).reshape(3, 4)
        assert fill_masked_lattice(lattice) is lattice

    def test_single_hole_takes_neighbour_mean(self):
        lattice = np.array([
            [1.0, 2.0, 3.0],
            [4.0, np.nan, 6.0],
            [7.0, 8.0, 9.0],
        ])
        filled = fill_masked_lattice(lattice)
        # 4-neighbourhood of the hole: 2, 4, 6, 8.
        assert filled[1, 1] == pytest.approx(5.0)

    def test_exact_at_surviving_cells(self):
        rng = np.random.default_rng(0)
        lattice = rng.normal(-60.0, 5.0, size=(6, 6))
        holed = lattice.copy()
        holed[([1, 2, 4], [1, 4, 2])] = np.nan
        filled = fill_masked_lattice(holed)
        survivors = np.isfinite(holed)
        assert np.array_equal(filled[survivors], lattice[survivors])
        assert np.isfinite(filled).all()

    def test_fill_is_deterministic(self):
        lattice = np.full((5, 5), np.nan)
        lattice[::2, ::2] = np.arange(9.0).reshape(3, 3)
        a = fill_masked_lattice(lattice)
        b = fill_masked_lattice(lattice.copy())
        assert np.array_equal(a, b)
        assert np.isfinite(a).all()

    def test_insufficient_coverage_rejected(self):
        lattice = np.full((4, 4), np.nan)
        lattice[0, 0] = -50.0  # 1/16 present < default floor
        with pytest.raises(ConfigurationError, match="coverage"):
            fill_masked_lattice(lattice)


# ---------------------------------------------------------------------------
# QuorumPolicy
# ---------------------------------------------------------------------------


class TestQuorumPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumPolicy(min_readers=0)
        with pytest.raises(ConfigurationError):
            QuorumPolicy(min_reference_coverage=0.0)
        with pytest.raises(ConfigurationError):
            QuorumPolicy(min_reference_coverage=1.5)

    def test_complete_unmasked_reading_passes_through(self):
        reading = clean_reading_at((1.5, 1.5))
        decision = QuorumPolicy().apply(reading)
        assert decision.reading is reading  # same object, zero cost
        assert not decision.degraded
        assert decision.surviving_readers == tuple(range(reading.n_readers))
        assert decision.excluded_readers == ()
        assert all(c == 1.0 for c in decision.coverage)

    def test_masked_but_complete_is_degraded_but_untrimmed(self):
        reading = masked_copy(clean_reading_at((1.5, 1.5)))
        decision = QuorumPolicy().apply(reading)
        assert decision.reading is reading
        assert decision.degraded  # flagged: provenance is partial

    def test_low_coverage_reader_excluded(self):
        reading = clean_reading_at((1.5, 1.5))
        n_refs = reading.n_references
        # Reader 2 loses 60% of its reference columns: below the 0.5 floor.
        holes = [(2, j) for j in range(int(0.6 * n_refs) + 1)]
        decision = QuorumPolicy().apply(masked_copy(reading, holes))
        assert decision.degraded
        assert 2 in decision.excluded_readers
        assert decision.reading.n_readers == reading.n_readers - 1
        assert decision.coverage[2] < 0.5

    def test_quorum_unmet_raises(self):
        reading = clean_reading_at((1.5, 1.5))
        n_refs = reading.n_references
        # Wipe most references for all but one reader.
        holes = [
            (i, j)
            for i in range(1, reading.n_readers)
            for j in range(n_refs - 1)
        ]
        with pytest.raises(EstimationError, match="quorum unmet"):
            QuorumPolicy().apply(masked_copy(reading, holes))

    def test_diagnostics_shape(self):
        decision = QuorumPolicy().apply(
            masked_copy(clean_reading_at((1.0, 2.0)), holes=[(0, 0)])
        )
        diag = decision.diagnostics()
        assert set(diag) == {
            "quorum_surviving_readers",
            "quorum_excluded_readers",
            "quorum_coverage",
            "quorum_degraded",
        }
        assert diag["quorum_degraded"] is True


# ---------------------------------------------------------------------------
# Masked VIRE estimation
# ---------------------------------------------------------------------------


class TestMaskedEstimation:
    def test_masked_flag_alone_is_bit_identical(self):
        grid = paper_testbed_grid()
        vire = VIREEstimator(grid, VIREConfig(subdivisions=5))
        reading = clean_reading_at((1.2, 2.1))
        strict = vire.estimate(reading)
        masked = vire.estimate(masked_copy(reading))
        assert masked.position == strict.position  # bitwise
        assert masked.diagnostics["quorum_degraded"] is True

    def test_holes_still_localize(self):
        grid = paper_testbed_grid()
        vire = VIREEstimator(grid, VIREConfig(subdivisions=5))
        target = (1.5, 1.5)
        reading = clean_reading_at(target)
        # Two dead reference tags (all readers lose those columns).
        holes = [(i, j) for i in range(reading.n_readers) for j in (5, 10)]
        result = vire.estimate(masked_copy(reading, holes))
        assert result.error_to(target) < 0.8
        assert result.diagnostics["quorum_degraded"] is True

    def test_dead_reader_is_excluded_then_estimates(self):
        grid = paper_testbed_grid()
        vire = VIREEstimator(grid, VIREConfig(subdivisions=5))
        target = (2.0, 1.0)
        reading = clean_reading_at(target)
        holes = [(1, j) for j in range(reading.n_references)]
        result = vire.estimate(masked_copy(reading, holes))
        assert result.diagnostics["quorum_excluded_readers"] == [1]
        assert result.error_to(target) < 1.0

    def test_quorum_unmet_propagates_as_estimation_error(self):
        grid = paper_testbed_grid()
        vire = VIREEstimator(grid, VIREConfig(subdivisions=5))
        reading = clean_reading_at((1.5, 1.5))
        holes = [
            (i, j)
            for i in range(1, reading.n_readers)
            for j in range(reading.n_references - 1)
        ]
        with pytest.raises(EstimationError, match="quorum unmet"):
            vire.estimate(masked_copy(reading, holes))


# ---------------------------------------------------------------------------
# NaN-aware LANDMARC
# ---------------------------------------------------------------------------


class TestNanAwareLandmarc:
    def test_finite_path_matches_plain_norm(self):
        reading = clean_reading_at((1.3, 1.7))
        expected = np.linalg.norm(
            reading.reference_rssi - reading.tracking_rssi[:, np.newaxis],
            axis=0,
        )
        np.testing.assert_allclose(
            rssi_space_distances(reading), expected, rtol=1e-12
        )

    def test_distance_bitwise_invariant_under_reader_order(self):
        # The canonical (sorted) reduction makes E exactly permutation
        # invariant — near-ties must not flip with reader order.
        reading = clean_reading_at((1.3, 1.7))
        reversed_ = reading.subset_readers([3, 2, 1, 0])
        assert np.array_equal(
            rssi_space_distances(reading), rssi_space_distances(reversed_)
        )

    def test_coverage_rescaled_distance(self):
        # 2 readers, 1 reference; reader 1's reading missing.
        reading = TrackingReading(
            reference_rssi=np.array([[-50.0], [np.nan]]),
            tracking_rssi=np.array([-53.0, -60.0]),
            reference_positions=np.array([[0.0, 0.0]]),
            masked=True,
        )
        # E = (K/m * sum |diff|^2)^(1/2) = (2/1 * 9)^(1/2).
        assert rssi_space_distances(reading)[0] == pytest.approx(np.sqrt(18.0))

    def test_fully_absent_reference_is_never_a_neighbour(self):
        reading = TrackingReading(
            reference_rssi=np.array([
                [np.nan, -50.0],
                [np.nan, -51.0],
            ]),
            tracking_rssi=np.array([-50.0, -51.0]),
            reference_positions=np.array([[0.0, 0.0], [1.0, 1.0]]),
            masked=True,
        )
        e = rssi_space_distances(reading)
        assert np.isinf(e[0]) and np.isfinite(e[1])
        # The estimator must land on the only rankable reference.
        result = LandmarcEstimator(k=1).estimate(reading)
        assert tuple(result.position) == (1.0, 1.0)

    def test_all_absent_raises(self):
        reading = TrackingReading(
            reference_rssi=np.full((2, 3), np.nan),
            tracking_rssi=np.array([-50.0, -51.0]),
            reference_positions=np.zeros((3, 2)),
            masked=True,
        )
        with pytest.raises(EstimationError, match="cannot rank"):
            LandmarcEstimator().estimate(reading)

    def test_masked_landmarc_still_close_in_clean_channel(self):
        target = (1.5, 1.5)
        reading = clean_reading_at(target)
        holed = reading.reference_rssi.copy()
        holed[0, 3] = np.nan
        holed[2, 7] = np.nan
        masked = dataclasses.replace(
            reading, reference_rssi=holed, masked=True
        )
        baseline = LandmarcEstimator().estimate(reading)
        degraded = LandmarcEstimator().estimate(masked)
        assert degraded.error_to(target) < baseline.error_to(target) + 0.75
