"""Property tests of the batch engine's bitwise-identity contract.

The claim under test (see :mod:`repro.engine.kernels` for the argument
*why* it holds): for **any** valid batch of readings — random tag
counts, NaN-masked references, permuted reader order, any threshold
mode or fallback policy — ``estimate_batch`` produces outputs bitwise
identical to the scalar ``estimate`` loop, and per-reading failures come
out as exactly the exception the scalar call would raise.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import LandmarcEstimator, TrackingReading, VIREConfig, VIREEstimator
from repro import paper_testbed_grid
from repro.engine import BatchEngine, EngineConfig, compute_shards
from repro.engine import kernels
from repro.exceptions import ConfigurationError, ReproError
from repro.geometry.grid import ReferenceGrid

GRID = paper_testbed_grid()
REF_POSITIONS = GRID.tag_positions()

rssi_values = st.floats(-100.0, -40.0, allow_nan=False, allow_infinity=False)
#: RSSI with NaN holes allowed — the masked-reading regime.
rssi_or_nan = st.one_of(rssi_values, st.just(float("nan")))


def _reading(reference, tracking, masked=False) -> TrackingReading:
    return TrackingReading(
        reference_rssi=reference,
        tracking_rssi=tracking,
        reference_positions=REF_POSITIONS,
        masked=masked,
    )


def reading_strategy(k: int = 4):
    return st.tuples(
        arrays(np.float64, (k, 16), elements=rssi_values),
        arrays(np.float64, (k,), elements=rssi_values),
    ).map(lambda t: _reading(t[0], t[1]))


def masked_reading_strategy(k: int = 4):
    """Readings whose reference matrix may contain NaN holes."""
    return st.tuples(
        arrays(np.float64, (k, 16), elements=rssi_or_nan),
        arrays(np.float64, (k,), elements=rssi_values),
    ).map(lambda t: _reading(t[0], t[1], masked=True))


def batch_strategy(min_size=1, max_size=6, masked=False):
    base = masked_reading_strategy() if masked else reading_strategy()
    return st.lists(base, min_size=min_size, max_size=max_size)


CONFIGS = [
    VIREConfig(subdivisions=4),
    VIREConfig(subdivisions=4, empty_fallback="landmarc"),
    VIREConfig(subdivisions=4, empty_fallback="error"),
    VIREConfig(subdivisions=4, threshold_mode="fixed", fixed_threshold_db=2.0),
    VIREConfig(subdivisions=4, w1_mode="paper-literal", connectivity=8),
    VIREConfig(subdivisions=4, w1_mode="uniform", use_w2=False, min_votes=3),
    # Tiny fixed thresholds empty the intersection for some tags but not
    # others — batches then mix dead (fallback/error) and live tags in
    # one vectorized group, the regime that once broke the w2
    # placeholder (a dead tag's zero weight row poisoned group
    # normalization; see fig8's sweep).
    VIREConfig(
        subdivisions=4,
        threshold_mode="fixed",
        fixed_threshold_db=0.25,
        empty_fallback="landmarc",
    ),
    VIREConfig(
        subdivisions=4,
        threshold_mode="fixed",
        fixed_threshold_db=0.25,
        empty_fallback="error",
    ),
]
config_strategy = st.sampled_from(CONFIGS)


def scalar_outcomes(est, readings):
    out = []
    for reading in readings:
        try:
            out.append(est.estimate(reading))
        except ReproError as exc:
            out.append(exc)
    return out


def assert_outcomes_identical(scalar, batch):
    assert len(scalar) == len(batch)
    for s, b in zip(scalar, batch):
        if isinstance(s, ReproError):
            assert type(b) is type(s), (s, b)
            assert str(b) == str(s)
        else:
            assert not isinstance(b, ReproError), (s, b)
            # Tuple equality on floats is bitwise up to +0.0/-0.0; make
            # the byte-level claim explicit via hex.
            assert [x.hex() for x in b.position] == [
                x.hex() for x in s.position
            ]
            assert b.diagnostics == s.diagnostics


class TestBatchEqualsScalar:
    @given(batch_strategy(), config_strategy)
    @settings(max_examples=25, deadline=None)
    def test_clean_batches(self, readings, config):
        est = VIREEstimator(GRID, config)
        assert_outcomes_identical(
            scalar_outcomes(est, readings),
            est.estimate_outcomes(readings),
        )

    @given(batch_strategy(masked=True), config_strategy)
    @settings(max_examples=25, deadline=None)
    def test_masked_batches(self, readings, config):
        """NaN holes: quorum trimming, imputation, infeasible thresholds
        and per-reading refusals all come out exactly as scalar."""
        est = VIREEstimator(GRID, config)
        assert_outcomes_identical(
            scalar_outcomes(est, readings),
            est.estimate_outcomes(readings),
        )

    @given(
        batch_strategy(min_size=2),
        st.permutations(range(4)),
        config_strategy,
    )
    @settings(max_examples=15, deadline=None)
    def test_reader_permutation(self, readings, perm, config):
        """Permuting every reading's reader order batch-wide is still
        bitwise scalar-equivalent (the batch axis cannot leak into the
        per-reader reductions)."""
        permuted = [r.subset_readers(list(perm)) for r in readings]
        est = VIREEstimator(GRID, config)
        assert_outcomes_identical(
            scalar_outcomes(est, permuted),
            est.estimate_outcomes(permuted),
        )

    @given(batch_strategy(min_size=2, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_mixed_reader_counts(self, readings):
        """Batches mixing different reader subsets group correctly."""
        mixed = [
            r if i % 2 == 0 else r.subset_readers(list(range(2 + i % 3)))
            for i, r in enumerate(readings)
        ]
        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        assert_outcomes_identical(
            scalar_outcomes(est, mixed),
            est.estimate_outcomes(mixed),
        )

    @given(batch_strategy(masked=True, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_landmarc_batches(self, readings):
        from repro.engine.batch import BatchLandmarc

        est = LandmarcEstimator()
        assert_outcomes_identical(
            scalar_outcomes(est, readings),
            BatchLandmarc(est).estimate_outcomes(readings),
        )

    @given(batch_strategy(max_size=5), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_sharding_is_transparent(self, readings, shard_size):
        """Splitting a batch into shards changes nothing but scheduling."""
        est = VIREEstimator(GRID, VIREConfig(subdivisions=4))
        whole = est.estimate_outcomes(readings)
        config = EngineConfig(shard_size=shard_size)
        sharded = []
        for shard in compute_shards(len(readings), config):
            sharded.extend(
                est.estimate_outcomes([readings[i] for i in shard])
            )
        assert_outcomes_identical(whole, sharded)


def _translated_world(readings, dx: int, dy: int):
    """The same readings in a rigidly translated room.

    Whole-metre offsets keep every coordinate (and every coordinate
    *difference* the interpolation kernels take) exactly representable,
    so the logical pipeline — thresholds, proximity maps, vote counts —
    must be **bitwise** unchanged; only the final centroid moves.
    """
    grid = ReferenceGrid(
        rows=4, cols=4, spacing_x=1.0, spacing_y=1.0,
        origin=(float(dx), float(dy)),
    )
    positions = grid.tag_positions()
    moved = [replace(r, reference_positions=positions) for r in readings]
    return grid, moved


class TestMetamorphicInvariance:
    """Physics-level invariances of the estimators themselves.

    Metamorphic relations (no oracle needed): localizing in a rigidly
    translated room must translate the answer and nothing else, and the
    answer cannot depend on which reader is called "reader 0". Both are
    checked on the scalar path *and* the batch engine — an invariance
    that held scalar-side but broke in a vectorized reduction would be
    exactly the kind of silent regression this suite exists to catch.
    """

    @given(
        batch_strategy(max_size=4),
        st.integers(-12, 12),
        st.integers(-12, 12),
        config_strategy,
    )
    @settings(max_examples=12, deadline=None)
    def test_vire_translation_equivariance(self, readings, dx, dy, config):
        d = np.array([float(dx), float(dy)])
        grid_t, moved = _translated_world(readings, dx, dy)
        est = VIREEstimator(GRID, config)
        est_t = VIREEstimator(grid_t, config)
        base = scalar_outcomes(est, readings)
        shifted = scalar_outcomes(est_t, moved)
        shifted_batch = est_t.estimate_outcomes(moved)
        for b, s, sb in zip(base, shifted, shifted_batch):
            if isinstance(b, ReproError):
                # The failure mode is part of the physics: it must not
                # depend on where the room sits.
                assert type(s) is type(b)
                assert type(sb) is type(b)
                continue
            for other in (s, sb):
                assert not isinstance(other, ReproError)
                # Logical path bitwise unchanged...
                assert (
                    other.diagnostics["threshold_db"]
                    == b.diagnostics["threshold_db"]
                )
                assert (
                    other.diagnostics["n_selected"]
                    == b.diagnostics["n_selected"]
                )
                # ...and the centroid rides along with the room.
                assert np.allclose(
                    np.asarray(other.position) - d,
                    np.asarray(b.position),
                    atol=1e-9,
                )

    @given(
        batch_strategy(masked=True, max_size=4),
        st.integers(-12, 12),
        st.integers(-12, 12),
    )
    @settings(max_examples=10, deadline=None)
    def test_landmarc_translation_equivariance(self, readings, dx, dy):
        from repro.engine.batch import BatchLandmarc

        d = np.array([float(dx), float(dy)])
        _, moved = _translated_world(readings, dx, dy)
        est = LandmarcEstimator()
        base = scalar_outcomes(est, readings)
        shifted = scalar_outcomes(est, moved)
        shifted_batch = BatchLandmarc(est).estimate_outcomes(moved)
        for b, s, sb in zip(base, shifted, shifted_batch):
            if isinstance(b, ReproError):
                assert type(s) is type(b)
                assert type(sb) is type(b)
                continue
            for other in (s, sb):
                assert not isinstance(other, ReproError)
                assert np.allclose(
                    np.asarray(other.position) - d,
                    np.asarray(b.position),
                    atol=1e-9,
                )

    @given(batch_strategy(max_size=4), st.permutations(range(4)), config_strategy)
    @settings(max_examples=12, deadline=None)
    def test_vire_reader_relabeling_invariance(self, readings, perm, config):
        """Relabeling readers is a no-op: proximity maps intersect over
        an unordered reader set, so thresholds and vote counts must be
        bitwise identical, and the centroid equal to reduction-order
        rounding."""
        est = VIREEstimator(GRID, config)
        base = scalar_outcomes(est, readings)
        relabeled = [r.subset_readers(list(perm)) for r in readings]
        permuted = scalar_outcomes(est, relabeled)
        permuted_batch = est.estimate_outcomes(relabeled)
        for b, p, pb in zip(base, permuted, permuted_batch):
            if isinstance(b, ReproError):
                assert type(p) is type(b)
                assert type(pb) is type(b)
                continue
            for other in (p, pb):
                assert not isinstance(other, ReproError)
                assert (
                    other.diagnostics["threshold_db"]
                    == b.diagnostics["threshold_db"]
                )
                assert (
                    other.diagnostics["n_selected"]
                    == b.diagnostics["n_selected"]
                )
                assert np.allclose(
                    np.asarray(other.position),
                    np.asarray(b.position),
                    atol=1e-9,
                )

    @given(batch_strategy(masked=True, max_size=4), st.permutations(range(4)))
    @settings(max_examples=10, deadline=None)
    def test_landmarc_reader_relabeling_invariance(self, readings, perm):
        from repro.engine.batch import BatchLandmarc

        est = LandmarcEstimator()
        base = scalar_outcomes(est, readings)
        relabeled = [r.subset_readers(list(perm)) for r in readings]
        permuted = scalar_outcomes(est, relabeled)
        permuted_batch = BatchLandmarc(est).estimate_outcomes(relabeled)
        for b, p, pb in zip(base, permuted, permuted_batch):
            if isinstance(b, ReproError):
                assert type(p) is type(b)
                assert type(pb) is type(b)
                continue
            for other in (p, pb):
                assert not isinstance(other, ReproError)
                assert np.allclose(
                    np.asarray(other.position),
                    np.asarray(b.position),
                    atol=1e-9,
                )


class TestKernelValidation:
    """The batched kernels reject malformed tensors with clear errors."""

    def test_deviation_shape_checks(self):
        with pytest.raises(ConfigurationError):
            kernels.batch_rssi_deviations(np.zeros((2, 3, 4)), np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            kernels.batch_rssi_deviations(
                np.zeros((2, 3, 4, 4)), np.zeros((3, 2))
            )

    def test_threshold_validation(self):
        dev = np.zeros((2, 3, 4, 4))
        with pytest.raises(ConfigurationError):
            kernels.batch_minimal_feasible_threshold(dev, min_cells=0)
        with pytest.raises(ConfigurationError):
            kernels.batch_minimal_feasible_threshold(dev, min_cells=17)
        bad = dev.copy()
        bad[0, 0, 0, 0] = -1.0
        with pytest.raises(ConfigurationError):
            kernels.batch_minimal_feasible_threshold(bad)

    def test_infeasible_tags_get_nan_not_error(self):
        dev = np.zeros((2, 2, 2, 2))
        dev[1] = np.nan
        out = kernels.batch_minimal_feasible_threshold(dev)
        assert out[0] == 0.0
        assert np.isnan(out[1])

    def test_eliminate_vote_bounds(self):
        masks = np.ones((2, 3, 2, 2), dtype=bool)
        with pytest.raises(ConfigurationError, match="1..3"):
            kernels.batch_eliminate(masks, np.array([1, 4]))

    def test_positions_is_scalar_gemv(self):
        """The final contraction reuses the scalar dot product per tag."""
        rng = np.random.default_rng(0)
        w = rng.random((3, 4, 4))
        w /= w.reshape(3, -1).sum(axis=1)[:, None, None]
        pos = rng.random((16, 2))
        batched = kernels.batch_positions(w, pos)
        for t in range(3):
            scalar = w[t].ravel() @ pos
            assert batched[t, 0].hex() == scalar[0].hex()
            assert batched[t, 1].hex() == scalar[1].hex()

    def test_landmarc_distance_ord_validation(self):
        with pytest.raises(ConfigurationError):
            kernels.batch_landmarc_distances(
                np.zeros((1, 2)), np.zeros((1, 2, 3)), ord=np.inf
            )
        with pytest.raises(ConfigurationError):
            kernels.batch_landmarc_distances(
                np.zeros((1, 2)), np.zeros((2, 2, 3))
            )
