"""Tests for shadowing fields, multipath, and fading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ChannelError
from repro.geometry.rooms import rectangular_room
from repro.geometry.vector import Segment
from repro.rf.fading import NoFading, RicianFading
from repro.rf.multipath import MultipathModel, MultipathSpec
from repro.rf.shadowing import ShadowingField, ShadowingSpec


@pytest.fixture
def room():
    return rectangular_room(10.0, 8.0, origin=(-2.0, -2.0), reflectivity=0.7)


class TestShadowingSpec:
    def test_default_resolution_quarter_of_correlation(self):
        spec = ShadowingSpec(correlation_length_m=2.0)
        assert spec.effective_resolution_m == pytest.approx(0.5)

    def test_explicit_resolution_wins(self):
        spec = ShadowingSpec(resolution_m=0.3)
        assert spec.effective_resolution_m == 0.3

    def test_common_fraction_bounds(self):
        with pytest.raises(ValueError):
            ShadowingSpec(common_fraction=1.5)


class TestShadowingField:
    def test_deterministic_given_rng_seed(self, room):
        spec = ShadowingSpec(sigma_db=3.0, correlation_length_m=2.0)
        f1 = ShadowingField(room, spec, np.random.default_rng(7))
        f2 = ShadowingField(room, spec, np.random.default_rng(7))
        pts = np.array([[0.0, 0.0], [3.3, 1.2], [-1.0, 5.0]])
        np.testing.assert_array_equal(f1.value_at(pts), f2.value_at(pts))

    def test_sigma_realized_on_lattice(self, room):
        spec = ShadowingSpec(sigma_db=3.0, correlation_length_m=1.5)
        field = ShadowingField(room, spec, np.random.default_rng(0))
        assert field.empirical_sigma() == pytest.approx(3.0, rel=1e-6)

    def test_zero_sigma_gives_zero_field(self, room):
        spec = ShadowingSpec(sigma_db=0.0)
        field = ShadowingField(room, spec, np.random.default_rng(0))
        pts = np.random.default_rng(1).uniform(-1, 5, (20, 2))
        np.testing.assert_array_equal(field.value_at(pts), 0.0)

    def test_spatial_correlation_nearby_similar(self, room):
        spec = ShadowingSpec(sigma_db=4.0, correlation_length_m=3.0)
        field = ShadowingField(room, spec, np.random.default_rng(3))
        rng = np.random.default_rng(4)
        base = rng.uniform(0, 4, (200, 2))
        near = base + rng.normal(0, 0.05, base.shape)
        far = rng.uniform(0, 4, (200, 2))
        v0 = field.value_at(base)
        diff_near = np.abs(field.value_at(near) - v0).mean()
        diff_far = np.abs(field.value_at(far) - v0).mean()
        assert diff_near < diff_far / 3

    def test_single_point_query(self, room):
        field = ShadowingField(room, ShadowingSpec(), np.random.default_rng(0))
        out = field.value_at(np.array([1.0, 1.0]))
        assert np.isscalar(out) or out.shape == ()

    def test_query_outside_padding_extrapolates(self, room):
        field = ShadowingField(
            room, ShadowingSpec(padding_m=1.0), np.random.default_rng(0)
        )
        # Far outside the padded lattice: linear extrapolation, finite.
        assert np.isfinite(field.value_at(np.array([[50.0, 50.0]]))).all()

    def test_bad_query_shape_rejected(self, room):
        field = ShadowingField(room, ShadowingSpec(), np.random.default_rng(0))
        with pytest.raises(ChannelError):
            field.value_at(np.zeros((2, 3)))


class TestMultipath:
    def test_disabled_returns_zero(self, room):
        model = MultipathModel(room, MultipathSpec(max_reflections=0))
        pts = np.random.default_rng(0).uniform(0, 4, (10, 2))
        np.testing.assert_array_equal(
            model.excess_gain_db((0.0, 0.0), pts), 0.0
        )

    def test_no_reflective_walls_returns_zero(self):
        open_room = rectangular_room(
            10, 10, reflectivity=0.0, name="anechoic"
        )
        model = MultipathModel(open_room, MultipathSpec(max_reflections=1))
        pts = np.array([[2.0, 2.0]])
        np.testing.assert_array_equal(
            model.excess_gain_db((5.0, 5.0), pts), 0.0
        )

    def test_excess_bounded_by_clamp(self, room):
        spec = MultipathSpec(max_reflections=2, coherence=1.0)
        model = MultipathModel(room, spec)
        pts = np.random.default_rng(0).uniform(-1.5, 7.5, (300, 2))
        gain = model.excess_gain_db((0.0, 0.0), pts)
        assert gain.min() >= spec.min_excess_db
        assert gain.max() <= spec.max_excess_db

    def test_incoherent_sum_nonnegative_gain(self, room):
        # coherence=0: powers add, so the gain over direct-only is >= 0.
        model = MultipathModel(room, MultipathSpec(max_reflections=1, coherence=0.0))
        pts = np.random.default_rng(1).uniform(-1, 7, (100, 2))
        gain = model.excess_gain_db((1.0, 1.0), pts)
        assert np.all(gain >= -1e-9)

    def test_coherent_creates_spatial_structure(self, room):
        model = MultipathModel(room, MultipathSpec(max_reflections=1, coherence=1.0))
        xs = np.linspace(0.0, 4.0, 200)
        pts = np.column_stack([xs, np.full_like(xs, 1.0)])
        gain = model.excess_gain_db((-1.0, 1.0), pts)
        assert gain.std() > 0.5  # fringes visible

    def test_first_order_image_count(self, room):
        model = MultipathModel(room, MultipathSpec(max_reflections=1))
        images = model.prepare_reader((0.0, 0.0))
        assert len(images.images) == len(room.reflective_walls)

    def test_second_order_image_count(self, room):
        model = MultipathModel(room, MultipathSpec(max_reflections=2))
        n = len(room.reflective_walls)
        images = model.prepare_reader((0.0, 0.0))
        assert len(images.images) == n + n * (n - 1)

    def test_wall_phases_change_pattern(self, room):
        spec = MultipathSpec(max_reflections=1, coherence=1.0)
        model = MultipathModel(room, spec)
        pts = np.random.default_rng(2).uniform(0, 4, (50, 2))
        g0 = model.prepare_reader((0.0, 0.0), [0.0] * 4).excess_gain_db(pts)
        g1 = model.prepare_reader((0.0, 0.0), [1.0, 2.0, 3.0, 0.5]).excess_gain_db(pts)
        assert not np.allclose(g0, g1)

    def test_wall_phase_count_validated(self, room):
        model = MultipathModel(room, MultipathSpec(max_reflections=1))
        with pytest.raises(ChannelError, match="wall phases"):
            model.prepare_reader((0.0, 0.0), [0.0])

    def test_invalid_spec_rejected(self):
        with pytest.raises(ChannelError):
            MultipathSpec(max_reflections=3)
        with pytest.raises(ChannelError):
            MultipathSpec(coherence=-0.1)

    def test_reflection_only_valid_through_wall(self):
        # A wall segment that the mirror path cannot reach contributes 0.
        room = rectangular_room(10, 10, reflectivity=0.0).with_walls(
            [  # single short reflective obstacle at x ~ 5
                __import__("repro.geometry.rooms", fromlist=["Wall"]).Wall(
                    Segment((5.0, 4.9), (5.0, 5.1)), attenuation_db=0.0,
                    reflectivity=0.9,
                )
            ]
        )
        model = MultipathModel(room, MultipathSpec(max_reflections=1, coherence=0.0))
        reader = (4.0, 5.0)
        # Point whose mirror path reflects inside the tiny wall: near the axis.
        on_axis = np.array([[4.5, 5.0]])
        off_axis = np.array([[4.0, 9.0]])
        g_on = model.excess_gain_db(reader, on_axis)
        g_off = model.excess_gain_db(reader, off_axis)
        assert g_on[0] > 0.0
        assert g_off[0] == pytest.approx(0.0)


class TestFading:
    def test_no_fading_returns_zeros(self):
        out = NoFading().sample_db(np.random.default_rng(0), (3, 4))
        np.testing.assert_array_equal(out, 0.0)

    def test_rician_shape(self, rician):
        out = rician.sample_db(np.random.default_rng(0), (5, 7))
        assert out.shape == (5, 7)

    def test_high_k_low_variance(self):
        rng = np.random.default_rng(0)
        calm = RicianFading(k_factor=100.0).sample_db(rng, (5000,))
        rough = RicianFading(k_factor=0.5).sample_db(rng, (5000,))
        assert calm.std() < rough.std() / 3

    def test_floor_truncates_deep_fades(self):
        fading = RicianFading(k_factor=0.0, floor_db=-10.0)
        out = fading.sample_db(np.random.default_rng(0), (20000,))
        assert out.min() >= -10.0

    def test_mean_offset_near_zero_for_large_k(self):
        assert abs(RicianFading(k_factor=50.0).mean_offset_db()) < 0.2

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            RicianFading(k_factor=-1.0)
        with pytest.raises(ValueError):
            RicianFading(floor_db=1.0)
