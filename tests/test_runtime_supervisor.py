"""Tests for repro.runtime: RuntimePolicy + SupervisedPool + wiring.

The worker fixtures deliberately kill or hang *worker* processes: each
one checks ``multiprocessing.parent_process()`` so the fault only fires
when running inside a pool worker — the serial in-process fallback (and
plain serial runs) compute the honest value. That is exactly the
supervision contract: a crashed worker degrades throughput, never
answers.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import pytest

from repro.engine import EngineConfig
from repro.engine.sharding import compute_shards, map_shards
from repro.exceptions import ConfigurationError, SupervisionError
from repro.runtime import RuntimePolicy, SupervisedPool, supervised_map
from repro.runtime.supervisor import run_shard_with_salvage
from repro.service.metrics import MetricsRegistry
from repro.utils.parallel import map_trials


# -- picklable worker fixtures (module level by necessity) -------------------

def _square(i: int) -> int:
    return i * i


def _crash_on_three(i: int) -> int:
    """os._exit the *worker* on i == 3; honest value in the parent."""
    if i == 3 and mp.parent_process() is not None:
        os._exit(13)
    return i * i


def _hang_on_two(i: int) -> int:
    """Sleep far past any test deadline on i == 2, workers only."""
    if i == 2 and mp.parent_process() is not None:
        time.sleep(60.0)
    return i * i


def _raise_on_four(i: int) -> int:
    """Deterministic application error — must NOT be retried."""
    if i == 4:
        raise ValueError("deterministic failure on 4")
    return i * i


def _square_shard(shard) -> list[int]:
    return [i * i for i in shard]


def _crashy_shard(shard) -> list[int]:
    """Kill the worker whenever index 3 rides in the shard."""
    if 3 in list(shard) and mp.parent_process() is not None:
        os._exit(13)
    return [i * i for i in shard]


def _no_sleep(_s: float) -> None:
    pass


# -- RuntimePolicy -----------------------------------------------------------

class TestRuntimePolicy:
    def test_defaults_are_unsupervised(self):
        policy = RuntimePolicy()
        assert policy.supervised is False
        assert policy.serial_fallback is True
        assert policy.max_retries >= 1

    def test_backoff_is_exponential(self):
        policy = RuntimePolicy(backoff_base_s=0.1, backoff_multiplier=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimePolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(shard_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(backoff_base_s=-0.1)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RuntimePolicy(checkpoint_interval_s=0.0)

    def test_with_returns_modified_copy(self):
        policy = RuntimePolicy()
        supervised = policy.with_(supervised=True)
        assert supervised.supervised and not policy.supervised


# -- SupervisedPool ----------------------------------------------------------

class TestSupervisedPool:
    def test_happy_path_matches_serial(self):
        expected = [_square(i) for i in range(8)]
        policy = RuntimePolicy(supervised=True)
        with SupervisedPool(2, policy, sleep=_no_sleep) as pool:
            assert pool.map(_square, list(range(8))) == expected
            assert pool.counters() == {
                "retries": 0, "timeouts": 0,
                "respawns": 0, "serial_fallbacks": 0,
            }

    def test_empty_input(self):
        with SupervisedPool(2, RuntimePolicy(supervised=True)) as pool:
            assert pool.map(_square, []) == []

    def test_worker_crash_recovers_bit_identical(self):
        """A worker that os._exits still yields the serial answers."""
        expected = [i * i for i in range(8)]
        metrics = MetricsRegistry()
        policy = RuntimePolicy(supervised=True, max_retries=2)
        with SupervisedPool(
            2, policy, metrics=metrics, sleep=_no_sleep
        ) as pool:
            out = pool.map(_crash_on_three, list(range(8)))
            assert out == expected
            # The poisoned task exhausts its retries in workers, then the
            # serial fallback computes it in-process. Collateral damage
            # (which *other* futures the dying worker takes down) is
            # scheduling-dependent, so the exact counts are not — the
            # contract is answers, plus consistent accounting.
            assert pool.serial_fallbacks >= 1
            assert pool.respawns >= 1
        assert metrics.counter(
            "runtime_serial_fallbacks_total", ""
        ).value == float(pool.serial_fallbacks)
        assert metrics.counter(
            "runtime_pool_respawns_total", ""
        ).value == float(pool.respawns)

    def test_timeout_recovers_bit_identical(self):
        expected = [i * i for i in range(5)]
        policy = RuntimePolicy(
            supervised=True, shard_timeout_s=0.3, max_retries=1
        )
        with SupervisedPool(2, policy, sleep=_no_sleep) as pool:
            out = pool.map(_hang_on_two, list(range(5)))
            assert out == expected
            assert pool.timeouts >= 1
            assert pool.serial_fallbacks >= 1

    def test_deterministic_error_propagates_without_retry(self):
        policy = RuntimePolicy(supervised=True, max_retries=3)
        with SupervisedPool(2, policy, sleep=_no_sleep) as pool:
            with pytest.raises(ValueError, match="deterministic failure"):
                pool.map(_raise_on_four, list(range(6)))
            assert pool.retries == 0  # app errors are never retried

    def test_fallback_disabled_raises_supervision_error(self):
        policy = RuntimePolicy(
            supervised=True, max_retries=0, serial_fallback=False
        )
        with SupervisedPool(2, policy, sleep=_no_sleep) as pool:
            with pytest.raises(SupervisionError):
                pool.map(_crash_on_three, list(range(5)))

    def test_backoff_sleeps_recorded(self):
        sleeps: list[float] = []
        policy = RuntimePolicy(
            supervised=True, max_retries=2, backoff_base_s=0.01
        )
        with SupervisedPool(2, policy, sleep=sleeps.append) as pool:
            pool.map(_crash_on_three, list(range(5)))
        assert len(sleeps) == pool.retries
        assert all(s > 0 for s in sleeps)

    def test_max_workers_validated(self):
        with pytest.raises(ConfigurationError):
            SupervisedPool(0)

    def test_supervised_map_one_shot(self):
        out = supervised_map(
            _square, list(range(6)), max_workers=2,
            policy=RuntimePolicy(supervised=True), sleep=_no_sleep,
        )
        assert out == [i * i for i in range(6)]


# -- run_shard_with_salvage (serving path) -----------------------------------

class TestShardSalvage:
    def test_clean_shard_untouched(self):
        out = run_shard_with_salvage(
            _square_shard, [1, 2, 3],
            error_factory=lambda item, exc: -1,
        )
        assert out == [1, 4, 9]

    def test_poisoned_item_degrades_alone(self):
        def shard_fn(items):
            if any(i == 2 for i in items):
                raise RuntimeError("boom")
            return [i * i for i in items]

        metrics = MetricsRegistry()
        out = run_shard_with_salvage(
            shard_fn, [1, 2, 3],
            error_factory=lambda item, exc: ("salvaged", item),
            metrics=metrics,
        )
        assert out == [1, ("salvaged", 2), 9]
        assert metrics.counter(
            "runtime_shard_salvages_total", ""
        ).value == 1.0

    def test_error_factory_sees_the_exception(self):
        def shard_fn(items):
            raise KeyError("always")

        out = run_shard_with_salvage(
            shard_fn, ["x"],
            error_factory=lambda item, exc: type(exc).__name__,
        )
        assert out == ["KeyError"]


# -- wiring: map_trials / map_shards under supervision -----------------------

class TestSupervisedWiring:
    def test_map_trials_supervised_crash_recovery(self):
        policy = RuntimePolicy(supervised=True, backoff_base_s=0.0)
        serial = map_trials(_crash_on_three, range(10), n_jobs=1)
        supervised = map_trials(
            _crash_on_three, range(10), n_jobs=2, policy=policy
        )
        assert supervised == serial == [i * i for i in range(10)]

    def test_map_shards_supervised_crash_recovery(self):
        config = EngineConfig(
            n_jobs=2, shard_size=2,
            runtime=RuntimePolicy(supervised=True, backoff_base_s=0.0),
        )
        out = map_shards(_crashy_shard, 8, config=config)
        assert out == [i * i for i in range(8)]

    def test_map_shards_unsupervised_unchanged(self):
        config = EngineConfig(n_jobs=2, shard_size=3)
        out = map_shards(_square_shard, 7, config=config)
        assert out == [i * i for i in range(7)]

    def test_engine_config_rejects_bad_runtime(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(runtime="supervised")  # type: ignore[arg-type]


# -- satellite: bool index guards --------------------------------------------

class TestBoolGuards:
    def test_compute_shards_rejects_bool_n_items(self):
        with pytest.raises(ConfigurationError, match="bool"):
            compute_shards(True)

    def test_compute_shards_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            compute_shards("5")  # type: ignore[arg-type]

    def test_compute_shards_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            compute_shards(-1)

    def test_map_trials_rejects_bool_indices(self):
        with pytest.raises(ConfigurationError, match="bool"):
            map_trials(_square, [True, False])  # type: ignore[list-item]

    def test_map_trials_rejects_mixed_bool(self):
        with pytest.raises(ConfigurationError, match="bool"):
            map_trials(_square, [0, 1, True])  # type: ignore[list-item]

    def test_map_trials_still_accepts_plain_ints(self):
        assert map_trials(_square, [0, 1, 2]) == [0, 1, 4]
