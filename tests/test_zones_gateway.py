"""Tests for repro.zones.gateway: determinism, handoff, CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import paper_scenario
from repro.faults.models import ReaderOutageFault
from repro.faults.plan import FaultPlan
from repro.obs import Tracer
from repro.service.pipeline import ServiceConfig
from repro.zones import (
    RoamingTag,
    ZoneGateway,
    ZoneWorker,
    scaled_site_plan,
    single_zone_plan,
)


def _config(**kw) -> ServiceConfig:
    kw.setdefault("query_interval_s", 1.0)
    return ServiceConfig(**kw)


def _witness(report) -> str:
    return json.dumps(report.witness_document(), sort_keys=True)


class TestGatewayDeterminism:
    def test_single_zone_gateway_matches_the_service(self):
        from repro.service.session import LocalizationService

        scenario = paper_scenario("Env1", n_trials=1, base_seed=3)
        config = _config()
        baseline = LocalizationService(config).run(scenario, 6.0)
        report = ZoneGateway(single_zone_plan(scenario), config).run(6.0)
        (zone_report,) = report.zones.values()
        assert json.dumps(
            zone_report.witness_document(), sort_keys=True
        ) == json.dumps(baseline.witness_document(), sort_keys=True)
        assert report.handoffs == ()

    def test_two_zone_repeat_is_byte_identical(self):
        config = _config()
        runs = [
            _witness(
                ZoneGateway(
                    scaled_site_plan("Env1", 2, seed=0), config
                ).run(4.0)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_zones_are_independent_seeded_worlds(self):
        report = ZoneGateway(
            scaled_site_plan("Env1", 2, seed=0), _config()
        ).run(4.0)
        w0 = report.zones["z0"].witness_document()
        w1 = report.zones["z1"].witness_document()
        assert w0["n_results"] > 0
        # Same geometry, different derived seeds: different RSSI worlds.
        assert w0["results"] != w1["results"]

    @pytest.mark.slow
    def test_parallel_equals_serial(self):
        config = _config()
        plan = scaled_site_plan("Env1", 2, seed=0)
        serial = ZoneGateway(plan, config).run(4.0)
        parallel = ZoneGateway(plan, config).run(4.0, parallel=True)
        assert _witness(parallel) == _witness(serial)

    def test_gateway_summary_totals_the_zones(self):
        report = ZoneGateway(
            scaled_site_plan("Env1", 2, seed=0), _config()
        ).run(4.0)
        assert report.summary["zones"] == 2.0
        assert report.summary["results"] == sum(
            len(r.results) for r in report.zones.values()
        )
        merged = report.render_prometheus()
        assert "repro_zone_z0_service_requests_total" in merged
        assert "repro_zone_z1_service_requests_total" in merged


ROAM_ROUTE = ((0.0, (1.5, 1.5)), (6.0, (6.0, 1.5)))


def _roaming_plan(**kw):
    return scaled_site_plan(
        "Env1", 2, seed=0,
        roaming=(RoamingTag("r0", ROAM_ROUTE),), **kw
    )


class TestHandoff:
    def test_crossing_hands_off_with_a_carried_estimate(self):
        report = ZoneGateway(_roaming_plan(), _config()).run(8.0)
        assert len(report.handoffs) == 1
        (handoff,) = report.handoffs
        assert handoff.tag == "r0"
        assert handoff.from_zone == "z0"
        assert handoff.to_zone == "z1"
        # The route crosses the ownership boundary mid-run, not at the
        # endpoints, and the sender had already localized the tag.
        assert 0.0 < handoff.t_rel_s < 6.0
        assert handoff.carried_estimate is not None
        # Both zones served the tag while they owned it.
        for zid in ("z0", "z1"):
            tags = {r.tag_id for r in report.zones[zid].results}
            assert "tag-r0" in tags

    def test_roaming_run_repeats_byte_identically(self):
        config = _config()
        first = _witness(ZoneGateway(_roaming_plan(), config).run(8.0))
        second = _witness(ZoneGateway(_roaming_plan(), config).run(8.0))
        assert first == second

    def test_handoff_spans_are_traced_on_the_gateway_clock(self):
        tracer = Tracer()
        report = ZoneGateway(_roaming_plan(), _config()).run(
            8.0, tracer=tracer
        )
        assert len(report.handoffs) == 1

        def walk(spans):
            for s in spans:
                yield s
                yield from walk(s.children)

        spans = [
            s for s in walk(tracer.roots) if s.name == "gateway.handoff"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["from_zone"] == "z0"
        assert spans[0].attrs["to_zone"] == "z1"
        assert spans[0].attrs["t_rel_s"] == report.handoffs[0].t_rel_s
        # Handoff spans are stamped with the gateway's relative clock.
        assert spans[0].t == report.handoffs[0].t_rel_s

    @pytest.mark.slow
    def test_handoff_during_sender_degradation(self):
        # The sending zone loses a reader while the tag is crossing:
        # the protocol must still execute (it never consults estimator
        # health) and the receiving zone keeps serving the tag.
        route = ((0.0, (1.5, 1.5)), (20.0, (6.0, 1.5)))
        plan = scaled_site_plan(
            "Env1", 2, seed=0, roaming=(RoamingTag("r0", route),)
        )
        faults = FaultPlan(
            [ReaderOutageFault("z0/reader-0", start_s=0.0, duration_s=60.0)],
            seed=1,
        )
        report = ZoneGateway(plan, _config(), fault_plan=faults).run(30.0)
        assert any(
            h.tag == "r0" and h.from_zone == "z0" and h.to_zone == "z1"
            for h in report.handoffs
        )
        # The outage bit only z0.
        assert report.zones["z0"].summary["fault_records_dropped"] > 0
        assert report.zones["z1"].summary["fault_records_dropped"] == 0
        after = [
            r for r in report.zones["z1"].results if r.tag_id == "tag-r0"
        ]
        assert after, "receiver never served the handed-off tag"

    @pytest.mark.slow
    def test_handoff_into_a_zone_with_an_open_breaker(self):
        # The receiving zone has a permanently dark reader, so its
        # breaker opens; the handoff still lands and the tag is still
        # served there (degraded service beats no service).
        route = ((0.0, (1.5, 1.5)), (20.0, (6.0, 1.5)))
        plan = scaled_site_plan(
            "Env1", 2, seed=0, roaming=(RoamingTag("r0", route),)
        )
        # The dark reader's series cross the 30 s staleness horizon
        # ~30 s into the run, so run long enough for the breaker to
        # accumulate its consecutive-failure threshold after that.
        faults = FaultPlan(
            [ReaderOutageFault("z1/reader-0", start_s=0.0, duration_s=90.0)],
            seed=1,
        )
        report = ZoneGateway(plan, _config(), fault_plan=faults).run(40.0)
        assert any(h.to_zone == "z1" for h in report.handoffs)
        z1 = report.zones["z1"]
        assert z1.summary["breaker_transitions"] > 0
        served = [r for r in z1.results if r.tag_id == "tag-r0"]
        assert served, "open-breaker zone never served the tag"
        # Determinism holds under faults too.
        repeat = ZoneGateway(plan, _config(), fault_plan=faults).run(40.0)
        assert _witness(repeat) == _witness(report)


class TestGatewayGuards:
    def test_parallel_rejects_roaming_plans(self):
        gateway = ZoneGateway(_roaming_plan(), _config())
        with pytest.raises(ConfigurationError, match="serial lockstep"):
            gateway.run(4.0, parallel=True)

    def test_parallel_rejects_tracing(self):
        gateway = ZoneGateway(scaled_site_plan("Env1", 2), _config())
        with pytest.raises(ConfigurationError, match="parallel"):
            gateway.run(4.0, parallel=True, tracer=Tracer())

    def test_resume_requires_a_checkpoint_dir(self):
        gateway = ZoneGateway(scaled_site_plan("Env1", 2), _config())
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            gateway.run(4.0, resume=True)

    def test_checkpoint_dir_gets_one_file_per_zone(self, tmp_path):
        gateway = ZoneGateway(
            scaled_site_plan("Env1", 2, seed=0), _config(),
            checkpoint_dir=str(tmp_path),
        )
        gateway.run(4.0)
        assert (tmp_path / "z0.ckpt").exists()
        assert (tmp_path / "z1.ckpt").exists()


class TestServeZonesCLI:
    def test_json_output_is_deterministic(self, capsys):
        argv = [
            "serve", "--env", "Env1", "--zones", "2",
            "--duration", "4", "--seed", "0", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["zones_requested"] == 2
        assert set(doc["zones"]) == {"z0", "z1"}
        assert doc["n_results"] > 0

    def test_zones_conflicts_with_checkpoint_flags(self, capsys):
        assert main([
            "serve", "--env", "Env1", "--zones", "2",
            "--duration", "2", "--checkpoint", "x.ckpt",
        ]) == 2
        assert "not supported with --zones" in capsys.readouterr().err

    def test_parallel_requires_zones(self, capsys):
        assert main([
            "serve", "--env", "Env1", "--duration", "2", "--parallel",
        ]) == 2
        assert "--zones" in capsys.readouterr().err
