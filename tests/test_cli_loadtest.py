"""CLI coverage for `repro loadtest` and `repro report --from`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SWEEP = ["loadtest", "--duration", "5", "--rate", "4", "--points", "1,2",
         "--subdivisions", "5", "--seed", "3"]


class TestLoadtestCommand:
    def test_human_summary(self, capsys):
        assert main(SWEEP) == 0
        out = capsys.readouterr().out
        assert "steady-x1" in out and "steady-x2" in out
        assert "capacity report over 2 sweep point(s)" in out
        assert "capacity_model" in out

    def test_json_is_byte_identical_across_runs(self, capsys):
        assert main(SWEEP + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(SWEEP + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert set(doc["figures"]) == {
            "accuracy_vs_density", "capacity_model", "capacity_throughput",
            "latency_percentiles", "shed_breakdown",
        }

    def test_out_writes_sweep_and_report(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(SWEEP + ["--quiet", "--out", str(out_dir)]) == 0
        lines = (out_dir / "load_sweep.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            point = json.loads(line)
            assert point["offered"] >= point["served"] > 0
        report = json.loads((out_dir / "capacity_report.json").read_text())
        assert report["meta"]["multipliers"] == [1.0, 2.0]

    def test_bad_points_and_zones_rejected(self, capsys):
        assert main(["loadtest", "--points", "abc"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["loadtest", "--points", ""]) == 2
        capsys.readouterr()
        assert main(["loadtest", "--zones", "0"]) == 2

    @pytest.mark.slow
    def test_multi_zone_burst_profile(self, capsys):
        args = ["loadtest", "--profile", "burst", "--zones", "2",
                "--duration", "5", "--rate", "3", "--subdivisions", "5",
                "--admission-rate", "20", "--json"]
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        series = doc["figures"]["capacity_throughput"]["data"]["series"]
        assert series[0]["profile"] == "burst-x1"


class TestReportFromSweep:
    @pytest.fixture()
    def sweep_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(SWEEP + ["--quiet", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        return out_dir

    def test_regenerates_byte_identical_report(self, sweep_dir, capsys):
        args = ["report", "--from", str(sweep_dir), "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        # ... and it matches what the sweep run itself computed.
        committed = json.loads(
            (sweep_dir / "capacity_report.json").read_text()
        )
        assert json.loads(first)["figures"] == committed["figures"]

    def test_single_figure_in_isolation(self, sweep_dir, capsys):
        assert main(["report", "--from", str(sweep_dir),
                     "--figure", "latency_percentiles", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["figure"] == "latency_percentiles"
        assert len(doc["data"]["series"]) == 2

    def test_out_writes_one_artifact_per_figure(self, sweep_dir, tmp_path,
                                                capsys):
        figs = tmp_path / "figs"
        assert main(["report", "--from", str(sweep_dir),
                     "--out", str(figs)]) == 0
        assert "regenerated 5 figure artifact(s)" in capsys.readouterr().out
        names = sorted(p.name for p in figs.iterdir())
        assert names == [
            "report_accuracy_vs_density.json",
            "report_capacity_model.json",
            "report_capacity_throughput.json",
            "report_latency_percentiles.json",
            "report_shed_breakdown.json",
        ]
        for p in figs.iterdir():
            text = p.read_text()
            doc = json.loads(text)
            assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_list_figures(self, capsys):
        assert main(["report", "--list-figures"]) == 0
        out = capsys.readouterr().out
        assert "capacity_model" in out and "shed_breakdown" in out

    def test_unknown_figure_is_an_error(self, sweep_dir, capsys):
        assert main(["report", "--from", str(sweep_dir),
                     "--figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_missing_sweep_dir_is_an_error(self, tmp_path, capsys):
        assert main(["report", "--from", str(tmp_path / "void")]) == 2
        assert "load_sweep.jsonl" in capsys.readouterr().err

    def test_from_flags_require_from(self, capsys):
        assert main(["report", "--figure", "capacity_model"]) == 2
        assert "--from" in capsys.readouterr().err
