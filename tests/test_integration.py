"""Integration tests: the full stack end-to-end, reproduction claims,
and failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BOUNDARY_TAGS,
    NON_BOUNDARY_TAGS,
    LandmarcEstimator,
    SmoothingSpec,
    VIREConfig,
    VIREEstimator,
    build_paper_deployment,
    figure2a_tracking_tags,
    paper_scenario,
    paper_testbed_grid,
    run_scenario,
)
from repro.exceptions import ReadingError
from repro.rf import env1, env3, HumanMovementDisturbance
from repro.hardware.tags import TagSpec

from .conftest import make_clean_environment

pytestmark = pytest.mark.slow


class TestFullTestbedPipeline:
    """Event simulation -> middleware -> estimators, end to end."""

    def test_testbed_vire_localizes_clean_env(self):
        dep = build_paper_deployment(
            make_clean_environment(),
            tracking_tags={"asset": (1.4, 1.8)},
            seed=0,
        )
        dep.simulator.warm_up()
        dep.simulator.run_for(30.0)
        reading = dep.simulator.reading_for("asset")
        vire = VIREEstimator(dep.grid, VIREConfig(target_total_tags=900))
        err = vire.estimate(reading).error_to((1.4, 1.8))
        assert err < 0.2

    def test_testbed_matches_direct_path_statistically(self):
        """The event-driven path and the TrialSampler path must agree on
        the channel's mean RSSI (they share the frozen world)."""
        from repro.experiments.measurement import MeasurementSpec, TrialSampler

        env = env1()
        dep = build_paper_deployment(
            env, tracking_tags={"asset": (1.5, 1.5)}, seed=4,
            smoothing=SmoothingSpec(window=30),
        )
        dep.simulator.warm_up()
        dep.simulator.run_for(120.0)
        testbed_reading = dep.simulator.reading_for("asset")

        sampler = TrialSampler(
            env, dep.grid, seed=4, measurement=MeasurementSpec(n_reads=50)
        )
        direct_reading = sampler.reading_for((1.5, 1.5))
        # Same frozen world -> same reference field up to per-tag offsets
        # drawn from the same named stream and residual read noise.
        diff = testbed_reading.reference_rssi - direct_reading.reference_rssi
        assert np.abs(diff).mean() < 2.0

    def test_moving_asset_tracked_across_positions(self):
        dep = build_paper_deployment(
            make_clean_environment(),
            tracking_tags={"asset": (0.7, 0.7)},
            seed=1,
            smoothing=SmoothingSpec(mode="window", window=3),
        )
        vire = VIREEstimator(dep.grid, VIREConfig(target_total_tags=900))
        dep.simulator.warm_up()
        errors = []
        for target in [(0.7, 0.7), (1.7, 1.2), (2.4, 2.3)]:
            dep.move_tracking_tag("asset", target)
            dep.simulator.run_for(20.0)  # let smoothing converge
            reading = dep.simulator.reading_for("asset")
            errors.append(vire.estimate(reading).error_to(target))
        assert max(errors) < 0.4


class TestReproductionClaims:
    """The paper's headline results, as statistical assertions."""

    def test_vire_beats_landmarc_in_every_environment(self):
        grid = paper_testbed_grid()
        for env_name in ("Env1", "Env2", "Env3"):
            scenario = paper_scenario(env_name, n_trials=10)
            result = run_scenario(
                scenario,
                [LandmarcEstimator(),
                 VIREEstimator(grid, VIREConfig(target_total_tags=900))],
            )
            lm = result.by_name("LANDMARC").summary().mean
            vi = result.by_name("VIRE").summary().mean
            assert vi < lm, env_name

    def test_environment_difficulty_ordering(self):
        grid = paper_testbed_grid()
        means = {}
        for env_name in ("Env1", "Env2", "Env3"):
            scenario = paper_scenario(env_name, n_trials=10)
            result = run_scenario(scenario, [LandmarcEstimator()])
            means[env_name] = result.estimators[0].summary().mean
        assert means["Env1"] < means["Env3"]
        assert means["Env2"] < means["Env3"]

    def test_tag9_worst_for_landmarc(self):
        scenario = paper_scenario("Env3", n_trials=10)
        result = run_scenario(scenario, [LandmarcEstimator()])
        means = result.estimators[0].tag_means()
        assert means[9] == max(means.values())

    def test_boundary_tags_worse_than_interior_env3(self):
        scenario = paper_scenario("Env3", n_trials=10)
        result = run_scenario(scenario, [LandmarcEstimator()])
        interior = result.estimators[0].summary(tags=NON_BOUNDARY_TAGS).mean
        boundary = result.estimators[0].summary(tags=BOUNDARY_TAGS).mean
        assert boundary > interior

    def test_reduction_band_reasonable(self):
        """Mean reductions fall in a generous version of the paper's
        17-73% band."""
        grid = paper_testbed_grid()
        scenario = paper_scenario("Env3", n_trials=12)
        result = run_scenario(
            scenario,
            [LandmarcEstimator(),
             VIREEstimator(grid, VIREConfig(target_total_tags=900))],
        )
        lm = result.by_name("LANDMARC").summary().mean
        vi = result.by_name("VIRE").summary().mean
        reduction = 100.0 * (1.0 - vi / lm)
        assert 10.0 < reduction < 80.0


class TestFailureInjection:
    def test_missing_reader_degrades_gracefully(self):
        grid = paper_testbed_grid()
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        from repro.experiments.measurement import TrialSampler

        sampler = TrialSampler(env3(), grid, seed=0)
        pos = (1.5, 1.5)
        full = sampler.reading_for(pos)
        degraded = full.subset_readers([0, 1, 2])
        err_full = vire.estimate(full).error_to(pos)
        err_degraded = vire.estimate(degraded).error_to(pos)
        assert err_degraded < 2.0  # still bounded
        assert np.isfinite(err_full)

    def test_dead_reference_tag_detected_by_middleware(self):
        env = make_clean_environment()
        dep = build_paper_deployment(
            env,
            tracking_tags={"asset": (1.5, 1.5)},
            seed=0,
            smoothing=SmoothingSpec(max_age_s=10.0),
        )
        # Kill one reference tag's battery after 2 beacons.
        victim = dep.simulator.tag("ref-5")
        victim.spec = TagSpec(battery_life_beacons=2)
        dep.simulator.run_for(60.0)
        with pytest.raises(ReadingError, match="ref-5"):
            dep.simulator.reading_for("asset")

    def test_person_walking_through_bounded_degradation(self):
        env = env1()
        walk = HumanMovementDisturbance(
            waypoints=((1.5, -2.0), (1.5, 5.0)),
            speed_mps=0.8,
            attenuation_db=10.0,
            start_time_s=10.0,
        )
        dep = build_paper_deployment(
            env, tracking_tags={"asset": (1.5, 1.5)}, seed=0,
            disturbances=[walk],
            smoothing=SmoothingSpec(mode="window", window=8),
        )
        dep.simulator.warm_up()
        dep.simulator.run_for(12.0)  # person mid-walk
        reading = dep.simulator.reading_for("asset")
        vire = VIREEstimator(dep.grid, VIREConfig(target_total_tags=900))
        err = vire.estimate(reading).error_to((1.5, 1.5))
        # The temporal smoothing keeps the error bounded despite the person.
        assert err < 1.5

    def test_tracking_tag_outside_everything_stays_finite(self):
        from repro.experiments.measurement import TrialSampler

        grid = paper_testbed_grid()
        sampler = TrialSampler(env1(), grid, seed=0)
        vire = VIREEstimator(grid, VIREConfig(target_total_tags=900))
        reading = sampler.reading_for((7.0, 7.0))  # far outside
        res = vire.estimate(reading)
        assert np.isfinite(res.x) and np.isfinite(res.y)
